#include "baselines/fewshot_nets.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"

namespace fsda::baselines {

la::Matrix EpisodicNet::normalize_rows(const la::Matrix& m) {
  la::Matrix out = m;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    double norm = 0.0;
    for (double v : row) norm += v * v;
    norm = std::sqrt(std::max(norm, 1e-12));
    for (auto& v : row) v /= norm;
  }
  return out;
}

void EpisodicNet::train_embedder(const DAContext& context) {
  const data::Dataset& src = context.source;
  num_classes_ = src.num_classes;
  scaler_.fit(src.x);
  const la::Matrix xs = scaler_.transform(src.x);

  common::Rng rng(context.seed ^ 0xEE15ULL);
  embedder_ = std::make_unique<nn::Sequential>();
  std::size_t width = xs.cols();
  for (std::size_t h : options_.hidden) {
    embedder_->emplace<nn::Linear>(width, h, rng);
    embedder_->emplace<nn::ReLU>();
    width = h;
  }
  embed_dim_ = width;
  nn::Adam optimizer(embedder_->parameters(), options_.learning_rate, 0.9,
                     0.999, 1e-8, options_.weight_decay);

  // Index source rows by class once.
  std::vector<std::vector<std::size_t>> by_class(num_classes_);
  for (std::size_t i = 0; i < src.y.size(); ++i) {
    by_class[static_cast<std::size_t>(src.y[i])].push_back(i);
  }

  for (std::size_t episode = 0; episode < options_.episodes; ++episode) {
    // Build an episode: support then query rows, class by class.
    std::vector<std::size_t> rows;
    std::vector<std::int64_t> labels;
    std::vector<std::size_t> query_rows;
    std::vector<std::int64_t> query_labels;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      auto& members = by_class[c];
      if (members.empty()) continue;
      const std::size_t want =
          options_.support_per_class + options_.query_per_class;
      const std::size_t take = std::min(want, members.size());
      const auto picks = rng.sample_without_replacement(members.size(), take);
      const std::size_t support_take =
          std::min<std::size_t>(options_.support_per_class,
                                take > 1 ? take - 1 : take);
      for (std::size_t i = 0; i < take; ++i) {
        if (i < support_take) {
          rows.push_back(members[picks[i]]);
          labels.push_back(static_cast<std::int64_t>(c));
        } else {
          query_rows.push_back(members[picks[i]]);
          query_labels.push_back(static_cast<std::int64_t>(c));
        }
      }
    }
    if (rows.empty() || query_rows.empty()) continue;
    const std::size_t support_count = rows.size();
    rows.insert(rows.end(), query_rows.begin(), query_rows.end());
    labels.insert(labels.end(), query_labels.begin(), query_labels.end());

    optimizer.zero_grad();
    const la::Matrix z =
        embedder_->forward(xs.select_rows(rows), /*training=*/true);
    la::Matrix grad(z.rows(), z.cols(), 0.0);
    episode_loss(z, labels, support_count, grad);
    embedder_->backward(grad);
    nn::clip_grad_norm(embedder_->parameters(), 5.0);
    optimizer.step();
  }
}

la::Matrix EpisodicNet::embed(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(embedder_ != nullptr, "embed before fit");
  return embedder_->forward(scaler_.transform(x_raw), /*training=*/false);
}

// ---------------------------------------------------------------------------
// MatchNet
// ---------------------------------------------------------------------------

double MatchNet::episode_loss(const la::Matrix& z,
                              const std::vector<std::int64_t>& labels,
                              std::size_t support_count,
                              la::Matrix& grad_out) {
  const std::size_t m = z.rows();
  const std::size_t h = z.cols();
  const std::size_t queries = m - support_count;
  FSDA_CHECK(queries > 0 && support_count > 0);

  // Normalized embeddings + norms for the backward pass.
  la::Matrix zn = z;
  std::vector<double> norms(m);
  for (std::size_t i = 0; i < m; ++i) {
    auto row = zn.row(i);
    double norm = 0.0;
    for (double v : row) norm += v * v;
    norm = std::sqrt(std::max(norm, 1e-12));
    norms[i] = norm;
    for (auto& v : row) v /= norm;
  }

  la::Matrix grad_zn(m, h, 0.0);
  double loss = 0.0;
  std::vector<double> attn(support_count);
  std::vector<double> dsim(support_count);
  for (std::size_t q = support_count; q < m; ++q) {
    // Attention over the support set.
    double mx = -1e300;
    for (std::size_t s = 0; s < support_count; ++s) {
      double sim = 0.0;
      const auto zq = zn.row(q);
      const auto zs = zn.row(s);
      for (std::size_t c = 0; c < h; ++c) sim += zq[c] * zs[c];
      attn[s] = sim / options_.temperature;
      mx = std::max(mx, attn[s]);
    }
    double denom = 0.0;
    for (std::size_t s = 0; s < support_count; ++s) {
      attn[s] = std::exp(attn[s] - mx);
      denom += attn[s];
    }
    double p_true = 0.0;
    for (std::size_t s = 0; s < support_count; ++s) {
      attn[s] /= denom;
      if (labels[s] == labels[q]) p_true += attn[s];
    }
    p_true = std::max(p_true, 1e-9);
    loss -= std::log(p_true);

    // dL/d attn_s = -[y_s == y_q] / p_true; through the softmax:
    // dL/d sim_s = attn_s * (g_s - sum_s' attn_s' g_s') / temperature.
    double weighted = 0.0;
    for (std::size_t s = 0; s < support_count; ++s) {
      const double g = labels[s] == labels[q] ? -1.0 / p_true : 0.0;
      dsim[s] = g;
      weighted += attn[s] * g;
    }
    for (std::size_t s = 0; s < support_count; ++s) {
      dsim[s] = attn[s] * (dsim[s] - weighted) / options_.temperature;
      // sim = zn_q . zn_s
      auto gq = grad_zn.row(q);
      auto gs = grad_zn.row(s);
      const auto zq = zn.row(q);
      const auto zs = zn.row(s);
      for (std::size_t c = 0; c < h; ++c) {
        gq[c] += dsim[s] * zs[c];
        gs[c] += dsim[s] * zq[c];
      }
    }
  }
  const double inv_q = 1.0 / static_cast<double>(queries);
  loss *= inv_q;
  grad_zn *= inv_q;

  // Back through the row normalization.
  for (std::size_t i = 0; i < m; ++i) {
    const auto zi = zn.row(i);
    const auto gi = grad_zn.row(i);
    double dot = 0.0;
    for (std::size_t c = 0; c < h; ++c) dot += zi[c] * gi[c];
    auto out = grad_out.row(i);
    for (std::size_t c = 0; c < h; ++c) {
      out[c] = (gi[c] - zi[c] * dot) / norms[i];
    }
  }
  return loss;
}

void MatchNet::fit(const DAContext& context) {
  train_embedder(context);
  support_z_ = normalize_rows(embed(context.target_few.x));
  support_y_ = context.target_few.y;
}

la::Matrix MatchNet::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(!support_y_.empty(), "predict before fit");
  const la::Matrix zq = normalize_rows(embed(x_raw));
  const la::Matrix sims = zq.matmul_transposed(support_z_);
  la::Matrix proba(x_raw.rows(), num_classes_, 0.0);
  for (std::size_t q = 0; q < zq.rows(); ++q) {
    double mx = -1e300;
    for (std::size_t s = 0; s < support_y_.size(); ++s) {
      mx = std::max(mx, sims(q, s) / options_.temperature);
    }
    double denom = 0.0;
    std::vector<double> attn(support_y_.size());
    for (std::size_t s = 0; s < support_y_.size(); ++s) {
      attn[s] = std::exp(sims(q, s) / options_.temperature - mx);
      denom += attn[s];
    }
    for (std::size_t s = 0; s < support_y_.size(); ++s) {
      proba(q, static_cast<std::size_t>(support_y_[s])) += attn[s] / denom;
    }
  }
  return proba;
}

// ---------------------------------------------------------------------------
// ProtoNet
// ---------------------------------------------------------------------------

double ProtoNet::episode_loss(const la::Matrix& z,
                              const std::vector<std::int64_t>& labels,
                              std::size_t support_count,
                              la::Matrix& grad_out) {
  const std::size_t m = z.rows();
  const std::size_t h = z.cols();
  const std::size_t queries = m - support_count;
  FSDA_CHECK(queries > 0 && support_count > 0);

  // Prototypes: mean support embedding per class present in the episode.
  la::Matrix proto(num_classes_, h, 0.0);
  std::vector<double> counts(num_classes_, 0.0);
  for (std::size_t s = 0; s < support_count; ++s) {
    const auto c = static_cast<std::size_t>(labels[s]);
    counts[c] += 1.0;
    auto p = proto.row(c);
    const auto zs = z.row(s);
    for (std::size_t k = 0; k < h; ++k) p[k] += zs[k];
  }
  std::vector<std::size_t> present;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] > 0.0) {
      present.push_back(c);
      auto p = proto.row(c);
      for (auto& v : p) v /= counts[c];
    }
  }
  FSDA_CHECK(!present.empty());

  la::Matrix grad_proto(num_classes_, h, 0.0);
  double loss = 0.0;
  std::vector<double> logits(present.size());
  for (std::size_t q = support_count; q < m; ++q) {
    const auto zq = z.row(q);
    double mx = -1e300;
    for (std::size_t pi = 0; pi < present.size(); ++pi) {
      const auto p = proto.row(present[pi]);
      double dist = 0.0;
      for (std::size_t k = 0; k < h; ++k) {
        const double dv = zq[k] - p[k];
        dist += dv * dv;
      }
      logits[pi] = -dist / options_.temperature;
      mx = std::max(mx, logits[pi]);
    }
    double denom = 0.0;
    for (auto& v : logits) {
      v = std::exp(v - mx);
      denom += v;
    }
    std::size_t true_pi = present.size();
    for (std::size_t pi = 0; pi < present.size(); ++pi) {
      logits[pi] /= denom;  // now the softmax probability
      if (static_cast<std::int64_t>(present[pi]) == labels[q]) true_pi = pi;
    }
    FSDA_CHECK_MSG(true_pi < present.size(),
                   "query class missing from episode support");
    loss -= std::log(std::max(logits[true_pi], 1e-12));

    // d(-dist)/dz_q = -2 (z_q - p); chain with (softmax - onehot).
    for (std::size_t pi = 0; pi < present.size(); ++pi) {
      const double g =
          (logits[pi] - (pi == true_pi ? 1.0 : 0.0)) / options_.temperature;
      const auto p = proto.row(present[pi]);
      auto gq = grad_out.row(q);
      auto gp = grad_proto.row(present[pi]);
      for (std::size_t k = 0; k < h; ++k) {
        const double diff = zq[k] - p[k];
        gq[k] += g * (-2.0) * diff;
        gp[k] += g * 2.0 * diff;
      }
    }
  }
  const double inv_q = 1.0 / static_cast<double>(queries);
  loss *= inv_q;
  for (std::size_t q = support_count; q < m; ++q) {
    auto gq = grad_out.row(q);
    for (auto& v : gq) v *= inv_q;
  }
  // Distribute prototype gradients to their support members.
  for (std::size_t s = 0; s < support_count; ++s) {
    const auto c = static_cast<std::size_t>(labels[s]);
    const auto gp = grad_proto.row(c);
    auto gs = grad_out.row(s);
    for (std::size_t k = 0; k < h; ++k) {
      gs[k] += gp[k] * inv_q / counts[c];
    }
  }
  return loss;
}

void ProtoNet::fit(const DAContext& context) {
  train_embedder(context);
  // Source prototypes...
  const la::Matrix zs = embed(context.source.x);
  la::Matrix src_proto(num_classes_, embed_dim_, 0.0);
  std::vector<double> src_counts(num_classes_, 0.0);
  for (std::size_t i = 0; i < zs.rows(); ++i) {
    const auto c = static_cast<std::size_t>(context.source.y[i]);
    src_counts[c] += 1.0;
    auto p = src_proto.row(c);
    const auto z = zs.row(i);
    for (std::size_t k = 0; k < embed_dim_; ++k) p[k] += z[k];
  }
  // ...updated toward the target shots (paper: "new prototypes are formed by
  // updating the source prototypes with limited labeled target data").
  const la::Matrix zt = embed(context.target_few.x);
  la::Matrix tgt_proto(num_classes_, embed_dim_, 0.0);
  std::vector<double> tgt_counts(num_classes_, 0.0);
  for (std::size_t i = 0; i < zt.rows(); ++i) {
    const auto c = static_cast<std::size_t>(context.target_few.y[i]);
    tgt_counts[c] += 1.0;
    auto p = tgt_proto.row(c);
    const auto z = zt.row(i);
    for (std::size_t k = 0; k < embed_dim_; ++k) p[k] += z[k];
  }
  prototypes_ = la::Matrix(num_classes_, embed_dim_, 0.0);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    for (std::size_t k = 0; k < embed_dim_; ++k) {
      const double s =
          src_counts[c] > 0.0 ? src_proto(c, k) / src_counts[c] : 0.0;
      const double t =
          tgt_counts[c] > 0.0 ? tgt_proto(c, k) / tgt_counts[c] : s;
      const double mix = tgt_counts[c] > 0.0 ? target_mix_ : 0.0;
      prototypes_(c, k) = (1.0 - mix) * s + mix * t;
    }
  }
}

la::Matrix ProtoNet::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(!prototypes_.empty(), "predict before fit");
  const la::Matrix zq = embed(x_raw);
  la::Matrix logits(zq.rows(), num_classes_);
  for (std::size_t q = 0; q < zq.rows(); ++q) {
    const auto z = zq.row(q);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const auto p = prototypes_.row(c);
      double dist = 0.0;
      for (std::size_t k = 0; k < embed_dim_; ++k) {
        const double d = z[k] - p[k];
        dist += d * d;
      }
      logits(q, c) = -dist / options_.temperature;
    }
  }
  return nn::softmax_rows(logits);
}

}  // namespace fsda::baselines
