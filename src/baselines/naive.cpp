#include "baselines/naive.hpp"

#include "common/error.hpp"

namespace fsda::baselines {

void SrcOnly::fit(const DAContext& context) {
  FSDA_CHECK_MSG(context.classifier_factory != nullptr,
                 "SrcOnly needs a classifier factory");
  scaler_.fit(context.source.x);
  classifier_ = context.classifier_factory(context.seed);
  classifier_->fit(scaler_.transform(context.source.x), context.source.y,
                   context.source.num_classes, {});
}

la::Matrix SrcOnly::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(classifier_ != nullptr, "predict before fit");
  return classifier_->predict_proba(scaler_.transform(x_raw));
}

void TarOnly::fit(const DAContext& context) {
  FSDA_CHECK_MSG(context.classifier_factory != nullptr,
                 "TarOnly needs a classifier factory");
  scaler_.fit(context.target_few.x);
  classifier_ = context.classifier_factory(context.seed);
  classifier_->fit(scaler_.transform(context.target_few.x),
                   context.target_few.y, context.target_few.num_classes, {});
}

la::Matrix TarOnly::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(classifier_ != nullptr, "predict before fit");
  return classifier_->predict_proba(scaler_.transform(x_raw));
}

void SourceAndTarget::fit(const DAContext& context) {
  FSDA_CHECK_MSG(context.classifier_factory != nullptr,
                 "S&T needs a classifier factory");
  const data::Dataset combined = context.source.concat(context.target_few);
  scaler_.fit(combined.x);
  // Target samples receive weight target_boost * n_src / n_tgt so the two
  // domains contribute comparably despite the few-shot imbalance.
  const double w_target =
      target_boost_ * static_cast<double>(context.source.size()) /
      static_cast<double>(context.target_few.size());
  std::vector<double> weights(combined.size(), 1.0);
  for (std::size_t i = context.source.size(); i < combined.size(); ++i) {
    weights[i] = w_target;
  }
  classifier_ = context.classifier_factory(context.seed);
  classifier_->fit(scaler_.transform(combined.x), combined.y,
                   combined.num_classes, weights);
}

la::Matrix SourceAndTarget::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(classifier_ != nullptr, "predict before fit");
  return classifier_->predict_proba(scaler_.transform(x_raw));
}

void FineTune::fit(const DAContext& context) {
  scaler_.fit(context.source.x);
  classifier_ = std::make_unique<models::MLPClassifier>(context.seed,
                                                        options_);
  classifier_->fit(scaler_.transform(context.source.x), context.source.y,
                   context.source.num_classes, {});
  classifier_->fine_tune(scaler_.transform(context.target_few.x),
                         context.target_few.y, tune_epochs_, tune_lr_);
}

la::Matrix FineTune::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(classifier_ != nullptr, "predict before fit");
  return classifier_->predict_proba(scaler_.transform(x_raw));
}

}  // namespace fsda::baselines
