#include "baselines/cmt.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "la/linalg.hpp"
#include "la/stats.hpp"

namespace fsda::baselines {

la::Matrix IcaModel::to_components(const la::Matrix& x) const {
  la::Matrix centered = x;
  for (std::size_t r = 0; r < centered.rows(); ++r) {
    for (std::size_t c = 0; c < centered.cols(); ++c) {
      centered(r, c) -= mean(0, c);
    }
  }
  return centered.matmul_transposed(unmix);  // rows = samples, cols = comps
}

la::Matrix IcaModel::to_inputs(const la::Matrix& s) const {
  la::Matrix x = s.matmul_transposed(mix);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      x(r, c) += mean(0, c);
    }
  }
  return x;
}

IcaModel fast_ica(const la::Matrix& x, std::size_t components,
                  std::size_t iterations, std::uint64_t seed) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t k = std::min(components, std::min(n - 1, d));
  FSDA_CHECK_MSG(k >= 1, "no ICA components possible");

  IcaModel model;
  model.mean = la::column_means(x);
  la::Matrix centered = x;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) centered(r, c) -= model.mean(0, c);
  }

  // Whiten via the top-k eigenpairs of the covariance.
  const la::Matrix cov = la::covariance(centered);
  const la::EigenResult eig = la::eigen_symmetric(cov);
  la::Matrix whiten(k, d);    // s_white = whiten * x_centered
  la::Matrix unwhiten(d, k);  // x_centered ~= unwhiten * s_white
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t col = d - 1 - i;  // eigenvalues ascending -> take top
    const double lambda = std::max(eig.values[col], 1e-8);
    for (std::size_t f = 0; f < d; ++f) {
      whiten(i, f) = eig.vectors(f, col) / std::sqrt(lambda);
      unwhiten(f, i) = eig.vectors(f, col) * std::sqrt(lambda);
    }
  }
  const la::Matrix z = centered.matmul_transposed(whiten);  // n x k, white

  // Symmetric FastICA with tanh nonlinearity.
  common::Rng rng(seed ^ 0x1CAULL);
  la::Matrix w = la::Matrix::randn(k, k, rng);
  auto symmetric_decorrelate = [](const la::Matrix& m) {
    return la::inv_sqrt_spd(m.matmul_transposed(m), 1e-10).matmul(m);
  };
  w = symmetric_decorrelate(w);
  for (std::size_t it = 0; it < iterations; ++it) {
    const la::Matrix s = z.matmul_transposed(w);  // n x k
    // w_new_i = E[z * g(s_i)] - E[g'(s_i)] * w_i, g = tanh.
    la::Matrix w_new(k, k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      double mean_gprime = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double g = std::tanh(s(r, i));
        mean_gprime += 1.0 - g * g;
        for (std::size_t c = 0; c < k; ++c) {
          w_new(i, c) += z(r, c) * g;
        }
      }
      const double inv_n = 1.0 / static_cast<double>(n);
      mean_gprime *= inv_n;
      for (std::size_t c = 0; c < k; ++c) {
        w_new(i, c) = w_new(i, c) * inv_n - mean_gprime * w(i, c);
      }
    }
    w_new = symmetric_decorrelate(w_new);
    const double delta = (w_new - w).max_abs();
    w = std::move(w_new);
    if (delta < 1e-6) break;
  }

  model.unmix = w.matmul(whiten);      // k x d
  model.mix = unwhiten.matmul_transposed(w);  // d x k (w orthogonal)
  return model;
}

void Cmt::fit(const DAContext& context) {
  FSDA_CHECK_MSG(context.classifier_factory != nullptr,
                 "CMT needs a classifier factory");
  const data::Dataset& src = context.source;
  const data::Dataset& tgt = context.target_few;
  scaler_.fit(src.x);
  const la::Matrix xs = scaler_.transform(src.x);
  const la::Matrix xt = scaler_.transform(tgt.x);

  const IcaModel ica = fast_ica(xs, options_.components,
                                options_.ica_iterations,
                                context.seed ^ 0xC47ULL);
  const la::Matrix st = ica.to_components(xt);
  const std::size_t k = st.cols();

  // Per-component stddev on source, for jitter scaling.
  const la::Matrix ss = ica.to_components(xs);
  const la::Matrix comp_std = la::column_stddevs(ss);

  common::Rng rng(context.seed ^ 0xC4271ULL);
  // Recombine component values within each class: the mechanism (mixing) is
  // shared, the independent causes are exchangeable across same-class
  // samples.
  la::Matrix aug_components(tgt.size() * options_.augment_factor, k);
  std::vector<std::int64_t> aug_labels;
  aug_labels.reserve(aug_components.rows());
  std::size_t out_row = 0;
  for (std::size_t c = 0; c < tgt.num_classes; ++c) {
    const auto members = tgt.indices_of_class(static_cast<std::int64_t>(c));
    if (members.empty()) continue;
    const std::size_t synth = members.size() * options_.augment_factor;
    for (std::size_t i = 0; i < synth; ++i) {
      for (std::size_t comp = 0; comp < k; ++comp) {
        const std::size_t donor =
            members[rng.uniform_index(members.size())];
        aug_components(out_row, comp) =
            st(donor, comp) +
            options_.jitter * comp_std(0, comp) * rng.normal();
      }
      aug_labels.push_back(static_cast<std::int64_t>(c));
      ++out_row;
    }
  }
  FSDA_CHECK_MSG(out_row > 0, "CMT produced no augmented samples");
  std::vector<std::size_t> used(out_row);
  for (std::size_t i = 0; i < out_row; ++i) used[i] = i;
  const la::Matrix x_aug =
      ica.to_inputs(aug_components.select_rows(used));

  classifier_ = context.classifier_factory(context.seed);
  classifier_->fit(x_aug, aug_labels, tgt.num_classes, {});
}

la::Matrix Cmt::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(classifier_ != nullptr, "predict before fit");
  return classifier_->predict_proba(scaler_.transform(x_raw));
}

}  // namespace fsda::baselines
