#include "baselines/coral.hpp"

#include "common/error.hpp"
#include "la/kernels.hpp"
#include "la/linalg.hpp"
#include "la/stats.hpp"

namespace fsda::baselines {

la::Matrix coral_transform(const la::Matrix& source,
                           const la::Matrix& target, double shrinkage) {
  FSDA_CHECK_MSG(source.cols() == target.cols(), "feature width mismatch");
  FSDA_CHECK_MSG(target.rows() >= 2, "CORAL needs >= 2 target samples");
  const la::Matrix cov_s = la::covariance_shrunk(source, /*shrinkage=*/0.05,
                                                 /*eps=*/1e-3);
  const la::Matrix cov_t =
      la::covariance_shrunk(target, shrinkage, /*eps=*/1e-3);
  const la::Matrix whiten = la::inv_sqrt_spd(cov_s, 1e-6);
  const la::Matrix color = la::sqrt_spd(cov_t, 1e-6);
  // Center source, whiten, re-color; the downstream scaler handles means.
  const la::Matrix mean_s = la::column_means(source);
  la::Matrix neg_mean_s(1, source.cols());
  la::scale_into(mean_s, -1.0, neg_mean_s);
  la::Matrix centered(source.rows(), source.cols());
  la::add_row_broadcast_into(source, neg_mean_s, centered);
  la::Matrix whitened(source.rows(), source.cols());
  la::matmul_into(centered, whiten, whitened);
  la::Matrix aligned(source.rows(), source.cols());
  la::matmul_into(whitened, color, aligned);
  // Re-center on the target mean so first moments align too.
  const la::Matrix mean_t = la::column_means(target);
  la::add_row_broadcast_into(aligned, mean_t, aligned);
  return aligned;
}

void Coral::fit(const DAContext& context) {
  FSDA_CHECK_MSG(context.classifier_factory != nullptr,
                 "CORAL needs a classifier factory");
  scaler_.fit(context.source.x);
  const la::Matrix xs = scaler_.transform(context.source.x);
  const la::Matrix xt = scaler_.transform(context.target_few.x);

  const la::Matrix aligned = coral_transform(xs, xt, shrinkage_);

  // Train on aligned source plus the raw labeled shots.
  la::Matrix x_train = aligned.vcat(xt);
  std::vector<std::int64_t> y_train = context.source.y;
  y_train.insert(y_train.end(), context.target_few.y.begin(),
                 context.target_few.y.end());
  classifier_ = context.classifier_factory(context.seed);
  classifier_->fit(x_train, y_train, context.source.num_classes, {});
}

la::Matrix Coral::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(classifier_ != nullptr, "predict before fit");
  return classifier_->predict_proba(scaler_.transform(x_raw));
}

}  // namespace fsda::baselines
