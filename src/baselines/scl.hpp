// fsda::baselines -- SCL: supervised contrastive learning combined with
// domain-adversarial training (Kim et al., ICASSP'24, applied to our
// few-shot DA setting).
//
// An embedding network is trained with (a) the supervised contrastive
// (SupCon) loss over L2-normalized embeddings of labeled source + target
// shots and (b) a domain head with gradient reversal, as in DANN.  A linear
// softmax head is then fitted on the frozen embeddings.  Model-specific.
#pragma once

#include "baselines/da_method.hpp"
#include "data/scaler.hpp"
#include "nn/sequential.hpp"

namespace fsda::baselines {

struct SclOptions {
  std::vector<std::size_t> hidden = {64, 32};
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  double temperature = 0.1;
  double lambda_max = 0.5;       ///< adversarial strength
  std::size_t head_epochs = 40;  ///< linear-head training epochs
};

class Scl : public DAMethod {
 public:
  explicit Scl(SclOptions options = {}) : options_(std::move(options)) {}

  [[nodiscard]] std::string name() const override { return "SCL"; }
  [[nodiscard]] bool model_agnostic() const override { return false; }
  void fit(const DAContext& context) override;
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x_raw) override;

 private:
  SclOptions options_;
  data::StandardScaler scaler_;
  std::unique_ptr<nn::Sequential> embedder_;
  std::unique_ptr<nn::Sequential> head_;
  std::size_t num_classes_ = 0;
};

/// SupCon loss and gradient w.r.t. *unnormalized* embeddings.
/// Anchors without positives in the batch are skipped.  Exposed for tests.
struct SupConResult {
  double value = 0.0;
  la::Matrix grad;  ///< same shape as embeddings
};
SupConResult supcon_loss(const la::Matrix& embeddings,
                         const std::vector<std::int64_t>& labels,
                         double temperature);

}  // namespace fsda::baselines
