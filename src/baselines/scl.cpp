#include "baselines/scl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace fsda::baselines {

SupConResult supcon_loss(const la::Matrix& embeddings,
                         const std::vector<std::int64_t>& labels,
                         double temperature) {
  const std::size_t m = embeddings.rows();
  const std::size_t h = embeddings.cols();
  FSDA_CHECK(labels.size() == m);
  FSDA_CHECK_MSG(temperature > 0.0, "non-positive temperature");
  SupConResult result;
  result.grad = la::Matrix(m, h, 0.0);
  if (m < 2) return result;

  // L2-normalize rows; remember norms for the backward pass.
  la::Matrix z = embeddings;
  std::vector<double> norms(m);
  for (std::size_t i = 0; i < m; ++i) {
    auto row = z.row(i);
    double norm = 0.0;
    for (double v : row) norm += v * v;
    norm = std::sqrt(std::max(norm, 1e-12));
    norms[i] = norm;
    for (auto& v : row) v /= norm;
  }

  // Pairwise similarities and per-anchor softmax over a != i.
  const la::Matrix sims = z.matmul_transposed(z);
  la::Matrix ds(m, m, 0.0);  // dL/ds_ia (anchor i, other a)
  double loss = 0.0;
  std::size_t anchors = 0;
  std::vector<double> q(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t positives = 0;
    for (std::size_t a = 0; a < m; ++a) {
      if (a != i && labels[a] == labels[i]) ++positives;
    }
    if (positives == 0) continue;
    ++anchors;
    // softmax over a != i of s_ia / tau
    double mx = -1e300;
    for (std::size_t a = 0; a < m; ++a) {
      if (a != i) mx = std::max(mx, sims(i, a) / temperature);
    }
    double denom = 0.0;
    for (std::size_t a = 0; a < m; ++a) {
      q[a] = a == i ? 0.0 : std::exp(sims(i, a) / temperature - mx);
      denom += q[a];
    }
    const double log_denom = std::log(denom) + mx;
    const double inv_p = 1.0 / static_cast<double>(positives);
    for (std::size_t a = 0; a < m; ++a) {
      if (a == i) continue;
      q[a] /= denom;
      const bool is_pos = labels[a] == labels[i];
      if (is_pos) {
        loss -= (sims(i, a) / temperature - log_denom) * inv_p;
      }
      ds(i, a) = q[a] - (is_pos ? inv_p : 0.0);
    }
  }
  if (anchors == 0) return result;
  const double inv_anchors = 1.0 / static_cast<double>(anchors);
  result.value = loss * inv_anchors;
  ds *= inv_anchors / temperature;

  // dL/dz = (dS + dS^T) Z  (s_ia = z_i . z_a contributes to both rows).
  la::Matrix grad_z = (ds + ds.transposed()).matmul(z);
  // Back through the normalization z = e / ||e||.
  for (std::size_t i = 0; i < m; ++i) {
    const auto zi = z.row(i);
    const auto gi = grad_z.row(i);
    double dot = 0.0;
    for (std::size_t c = 0; c < h; ++c) dot += zi[c] * gi[c];
    auto out = result.grad.row(i);
    for (std::size_t c = 0; c < h; ++c) {
      out[c] = (gi[c] - zi[c] * dot) / norms[i];
    }
  }
  return result;
}

void Scl::fit(const DAContext& context) {
  const data::Dataset& src = context.source;
  const data::Dataset& tgt = context.target_few;
  num_classes_ = src.num_classes;

  scaler_.fit(src.x);
  const la::Matrix xs = scaler_.transform(src.x);
  const la::Matrix xt = scaler_.transform(tgt.x);

  common::Rng rng(context.seed ^ 0x5C1ULL);
  embedder_ = std::make_unique<nn::Sequential>();
  std::size_t width = xs.cols();
  for (std::size_t h : options_.hidden) {
    embedder_->emplace<nn::Linear>(width, h, rng);
    embedder_->emplace<nn::ReLU>();
    width = h;
  }
  auto domain_head = std::make_unique<nn::Sequential>();
  domain_head->emplace<nn::Linear>(width, 1, rng);

  std::vector<nn::Parameter*> params = embedder_->parameters();
  for (auto* p : domain_head->parameters()) params.push_back(p);
  nn::Adam optimizer(params, options_.learning_rate, 0.9, 0.999, 1e-8,
                     options_.weight_decay);

  const std::size_t n_src = xs.rows();
  const std::size_t n_tgt = xt.rows();
  const std::size_t batch = std::min(options_.batch_size, n_src);
  const std::size_t tgt_batch = std::max<std::size_t>(2, batch / 4);
  std::vector<std::size_t> order(n_src);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const std::size_t total_steps =
      options_.epochs * ((n_src + batch - 1) / batch);
  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n_src; start += batch) {
      const std::size_t end = std::min(n_src, start + batch);
      const std::span<const std::size_t> src_rows{order.data() + start,
                                                  end - start};
      std::vector<std::size_t> tgt_rows(tgt_batch);
      for (auto& r : tgt_rows) r = rng.uniform_index(n_tgt);
      const la::Matrix xb =
          xs.select_rows(src_rows).vcat(xt.select_rows(tgt_rows));
      const std::size_t m = xb.rows();
      std::vector<std::int64_t> labels(m);
      std::vector<double> domains(m);
      for (std::size_t i = 0; i < src_rows.size(); ++i) {
        labels[i] = src.y[src_rows[i]];
        domains[i] = 0.0;
      }
      for (std::size_t i = 0; i < tgt_rows.size(); ++i) {
        labels[src_rows.size() + i] = tgt.y[tgt_rows[i]];
        domains[src_rows.size() + i] = 1.0;
      }

      const double progress =
          static_cast<double>(step) /
          static_cast<double>(std::max<std::size_t>(1, total_steps));
      const double lambda =
          options_.lambda_max *
          (2.0 / (1.0 + std::exp(-10.0 * progress)) - 1.0);
      ++step;

      optimizer.zero_grad();
      const la::Matrix z = embedder_->forward(xb, /*training=*/true);
      SupConResult contrastive =
          supcon_loss(z, labels, options_.temperature);
      la::Matrix grad_z = std::move(contrastive.grad);

      const la::Matrix domain_logits = domain_head->forward(z, true);
      nn::LossResult domain_loss =
          nn::bce_with_logits(domain_logits, domains);
      la::Matrix grad_domain = domain_head->backward(domain_loss.grad);
      grad_domain *= -lambda;
      grad_z += grad_domain;

      embedder_->backward(grad_z);
      nn::clip_grad_norm(params, 5.0);
      optimizer.step();
    }
  }

  // Linear softmax head on frozen embeddings of source + shots.
  const la::Matrix z_all =
      embedder_->forward(xs.vcat(xt), /*training=*/false);
  std::vector<std::int64_t> y_all = src.y;
  y_all.insert(y_all.end(), tgt.y.begin(), tgt.y.end());
  head_ = std::make_unique<nn::Sequential>();
  head_->emplace<nn::Linear>(width, num_classes_, rng);
  nn::Adam head_opt(head_->parameters(), 5e-3, 0.9, 0.999, 1e-8, 1e-5);
  std::vector<std::size_t> head_order(z_all.rows());
  std::iota(head_order.begin(), head_order.end(), std::size_t{0});
  for (std::size_t epoch = 0; epoch < options_.head_epochs; ++epoch) {
    rng.shuffle(head_order);
    for (std::size_t start = 0; start < head_order.size(); start += batch) {
      const std::size_t end = std::min(head_order.size(), start + batch);
      const std::span<const std::size_t> rows{head_order.data() + start,
                                              end - start};
      const la::Matrix zb = z_all.select_rows(rows);
      std::vector<std::int64_t> yb(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) yb[i] = y_all[rows[i]];
      head_opt.zero_grad();
      const la::Matrix logits = head_->forward(zb, true);
      nn::LossResult loss = nn::softmax_cross_entropy(logits, yb);
      head_->backward(loss.grad);
      head_opt.step();
    }
  }
}

la::Matrix Scl::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(embedder_ != nullptr && head_ != nullptr,
                 "predict before fit");
  const la::Matrix z =
      embedder_->forward(scaler_.transform(x_raw), /*training=*/false);
  return nn::softmax_rows(head_->forward(z, /*training=*/false));
}

}  // namespace fsda::baselines
