#include "baselines/dann.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "la/kernels.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace fsda::baselines {

void Dann::fit(const DAContext& context) {
  const data::Dataset& src = context.source;
  const data::Dataset& tgt = context.target_few;
  num_classes_ = src.num_classes;

  scaler_.fit(src.x);
  const la::Matrix xs = scaler_.transform(src.x);
  const la::Matrix xt = scaler_.transform(tgt.x);

  common::Rng rng(context.seed ^ 0xDA44ULL);
  const std::size_t d = xs.cols();

  features_ = std::make_unique<nn::Sequential>();
  std::size_t width = d;
  for (std::size_t h : options_.feature_hidden) {
    features_->emplace<nn::Linear>(width, h, rng);
    features_->emplace<nn::ReLU>();
    width = h;
  }
  label_head_ = std::make_unique<nn::Sequential>();
  label_head_->emplace<nn::Linear>(width, num_classes_, rng);
  domain_head_ = std::make_unique<nn::Sequential>();
  domain_head_->emplace<nn::Linear>(width, 1, rng);

  std::vector<nn::Parameter*> params = features_->parameters();
  for (auto* p : label_head_->parameters()) params.push_back(p);
  for (auto* p : domain_head_->parameters()) params.push_back(p);
  nn::Adam optimizer(params, options_.learning_rate, 0.9, 0.999, 1e-8,
                     options_.weight_decay);

  const std::size_t n_src = xs.rows();
  const std::size_t n_tgt = xt.rows();
  const std::size_t batch = std::min(options_.batch_size, n_src);
  // Target rows per batch: a quarter of the batch, resampled with
  // replacement from the shots.
  const std::size_t tgt_batch = std::max<std::size_t>(2, batch / 4);

  std::vector<std::size_t> order(n_src);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const std::size_t total_steps =
      options_.epochs * ((n_src + batch - 1) / batch);
  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n_src; start += batch) {
      const std::size_t end = std::min(n_src, start + batch);
      const std::span<const std::size_t> src_rows{order.data() + start,
                                                  end - start};
      // Assemble mixed batch: source rows then resampled target rows.
      std::vector<std::size_t> tgt_rows(tgt_batch);
      for (auto& r : tgt_rows) r = rng.uniform_index(n_tgt);
      la::select_rows_into(xs, src_rows, src_b_);
      la::select_rows_into(xt, tgt_rows, tgt_b_);
      la::vcat_into(src_b_, tgt_b_, xb_);
      const std::size_t m = xb_.rows();

      std::vector<std::int64_t> labels(m);
      std::vector<double> domains(m);
      for (std::size_t i = 0; i < src_rows.size(); ++i) {
        labels[i] = src.y[src_rows[i]];
        domains[i] = 0.0;
      }
      for (std::size_t i = 0; i < tgt_rows.size(); ++i) {
        labels[src_rows.size() + i] = tgt.y[tgt_rows[i]];
        domains[src_rows.size() + i] = 1.0;
      }

      // Annealed reversal strength (Ganin's schedule).
      const double progress =
          static_cast<double>(step) /
          static_cast<double>(std::max<std::size_t>(1, total_steps));
      const double lambda =
          options_.lambda_max *
          (2.0 / (1.0 + std::exp(-10.0 * progress)) - 1.0);
      ++step;

      optimizer.zero_grad();
      const la::Matrix& z = features_->forward(xb_, /*training=*/true, ws_);

      // Label loss on all labeled rows (source + labeled shots).
      const la::Matrix& logits = label_head_->forward(z, true, ws_);
      nn::softmax_cross_entropy_into(logits, labels, label_grad_);
      const la::Matrix& grad_z_label =
          label_head_->backward(label_grad_, ws_);

      // Domain loss with gradient reversal into the extractor: the head's
      // own parameters receive the normal gradient; only the gradient
      // flowing back into z is negated and scaled.
      const la::Matrix& domain_logits = domain_head_->forward(z, true, ws_);
      nn::bce_with_logits_into(domain_logits, domains, {}, domain_grad_);
      const la::Matrix& grad_z_domain =
          domain_head_->backward(domain_grad_, ws_);
      // Combine: grad_z_label lives in the label head's workspace slab and
      // grad_z_domain in the domain head's, so both stay valid here.
      grad_z_.resize(m, z.cols());
      la::zip_into(grad_z_label, grad_z_domain, grad_z_,
                   [lambda](double gl, double gd) { return gl - lambda * gd; });

      features_->backward(grad_z_, ws_);
      nn::clip_grad_norm(params, 5.0);
      optimizer.step();
    }
  }
}

la::Matrix Dann::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(features_ != nullptr, "predict before fit");
  const la::Matrix x = scaler_.transform(x_raw);
  const la::Matrix& z = features_->forward(x, /*training=*/false, ws_);
  return nn::softmax_rows(label_head_->forward(z, /*training=*/false, ws_));
}

}  // namespace fsda::baselines
