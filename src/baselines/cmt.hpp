// fsda::baselines -- CMT (Causal Mechanism Transfer, Teshima et al.
// ICML'20): assumes source and target share an invertible mixing of
// independent causes; recovers the independent components on the source,
// maps the target shots into component space, augments them by recombining
// component values within each class, and trains the downstream model on
// the augmented target data.
//
// Substitution note (DESIGN.md): the original uses nonlinear ICA; at
// telemetry scale we use linear FastICA, which preserves the augmentation
// behaviour CMT's few-shot gains come from.
#pragma once

#include "baselines/da_method.hpp"
#include "common/rng.hpp"
#include "data/scaler.hpp"

namespace fsda::baselines {

struct CmtOptions {
  std::size_t components = 20;      ///< ICA components (capped by d)
  std::size_t augment_factor = 25;  ///< synthetic samples per target shot
  std::size_t ica_iterations = 80;
  double jitter = 0.15;  ///< component jitter (fraction of source stddev)
};

class Cmt : public DAMethod {
 public:
  explicit Cmt(CmtOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "CMT"; }
  void fit(const DAContext& context) override;
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x_raw) override;

 private:
  CmtOptions options_;
  data::StandardScaler scaler_;
  std::unique_ptr<models::Classifier> classifier_;
};

/// Linear FastICA (symmetric, tanh nonlinearity) on standardized data.
/// Returns the unmixing pipeline: components s = unmix * (x - mean).
struct IcaModel {
  la::Matrix mean;    ///< 1 x d
  la::Matrix unmix;   ///< k x d  (x -> s)
  la::Matrix mix;     ///< d x k  (s -> x, pseudo-inverse)
  [[nodiscard]] la::Matrix to_components(const la::Matrix& x) const;
  [[nodiscard]] la::Matrix to_inputs(const la::Matrix& s) const;
};
IcaModel fast_ica(const la::Matrix& x, std::size_t components,
                  std::size_t iterations, std::uint64_t seed);

}  // namespace fsda::baselines
