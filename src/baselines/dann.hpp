// fsda::baselines -- DANN (Domain-Adversarial Neural Network, Ganin &
// Lempitsky '15, as applied to network management in [14]/[15]).
//
// A shared feature extractor feeds a label head and a domain head; the
// domain head's gradient is *reversed* before flowing into the extractor, so
// the extractor learns label-discriminative but domain-indistinguishable
// representations.  In the few-shot setting the labeled target shots join
// the label loss (resampled per batch) and all target shots serve as the
// domain-1 examples.  Model-specific (uses its own MLP architecture).
#pragma once

#include "baselines/da_method.hpp"
#include "common/rng.hpp"
#include "data/scaler.hpp"
#include "nn/sequential.hpp"
#include "nn/workspace.hpp"

namespace fsda::baselines {

struct DannOptions {
  std::vector<std::size_t> feature_hidden = {64, 32};
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  /// Peak gradient-reversal strength (annealed in over training).
  double lambda_max = 1.0;
};

class Dann : public DAMethod {
 public:
  explicit Dann(DannOptions options = {}) : options_(std::move(options)) {}

  [[nodiscard]] std::string name() const override { return "DANN"; }
  [[nodiscard]] bool model_agnostic() const override { return false; }
  void fit(const DAContext& context) override;
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x_raw) override;

 private:
  DannOptions options_;
  data::StandardScaler scaler_;
  std::unique_ptr<nn::Sequential> features_;
  std::unique_ptr<nn::Sequential> label_head_;
  std::unique_ptr<nn::Sequential> domain_head_;
  std::size_t num_classes_ = 0;

  // Training workspace and persistent mini-batch buffers.
  nn::Workspace ws_;
  la::Matrix src_b_;
  la::Matrix tgt_b_;
  la::Matrix xb_;
  la::Matrix label_grad_;
  la::Matrix domain_grad_;
  la::Matrix grad_z_;
};

}  // namespace fsda::baselines
