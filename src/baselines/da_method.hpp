// fsda::baselines -- the common interface for all compared DA approaches
// (paper Section VI-A).
//
// A DAMethod consumes the full source training set plus the few-shot target
// training set and produces a predictor for raw target-domain samples.
// Model-agnostic methods additionally receive a classifier factory (the
// downstream network-management model); model-specific methods (DANN, SCL,
// MatchNet, ProtoNet) ignore it and use their own architectures, exactly as
// in the paper's evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "models/classifier.hpp"

namespace fsda::baselines {

/// Everything a DA method may use for training.
struct DAContext {
  const data::Dataset& source;      ///< full source training data
  const data::Dataset& target_few;  ///< few-shot labeled target data
  /// Downstream model factory (model-agnostic methods only).
  models::ClassifierFactory classifier_factory;
  std::uint64_t seed = 0;
};

/// A fitted domain-adaptation method.
class DAMethod {
 public:
  virtual ~DAMethod() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True when the method accepts an arbitrary downstream classifier.
  [[nodiscard]] virtual bool model_agnostic() const { return true; }

  /// Trains the method.
  virtual void fit(const DAContext& context) = 0;

  /// Class probabilities for raw (unnormalized) target samples.
  [[nodiscard]] virtual la::Matrix predict_proba(const la::Matrix& x_raw) = 0;

  /// Hard labels via argmax.
  [[nodiscard]] std::vector<std::int64_t> predict(const la::Matrix& x_raw) {
    return models::argmax_rows(predict_proba(x_raw));
  }
};

using DAMethodPtr = std::unique_ptr<DAMethod>;
using DAMethodFactory = std::function<DAMethodPtr()>;

}  // namespace fsda::baselines
