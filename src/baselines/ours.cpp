#include "baselines/ours.hpp"

#include "common/error.hpp"
#include "core/autoencoder.hpp"
#include "core/cgan.hpp"
#include "core/vae.hpp"

namespace fsda::baselines {

std::string recon_method_name(ReconKind kind) {
  switch (kind) {
    case ReconKind::Gan: return "FS+GAN (ours)";
    case ReconKind::NoCondGan: return "FS+NoCond";
    case ReconKind::Vae: return "FS+VAE";
    case ReconKind::VanillaAe: return "FS+VanillaAE";
  }
  throw common::ArgumentError("unknown reconstructor kind");
}

core::ReconstructorFactory make_reconstructor_factory(ReconKind kind,
                                                      ReconBudget budget) {
  return [kind, budget](std::size_t inv_dim, std::size_t var_dim,
                        std::uint64_t seed) -> core::ReconstructorPtr {
    switch (kind) {
      case ReconKind::Gan:
      case ReconKind::NoCondGan: {
        core::CganOptions options = budget == ReconBudget::Paper
                                        ? core::CganOptions::paper()
                                        : core::CganOptions::quick();
        options.conditional = (kind == ReconKind::Gan);
        return std::make_unique<core::ConditionalGAN>(inv_dim, var_dim,
                                                      options, seed);
      }
      case ReconKind::Vae: {
        core::VaeOptions options = core::VaeOptions::quick();
        if (budget == ReconBudget::Paper) {
          options.hidden.clear();  // auto width
          options.epochs = 300;
        }
        return std::make_unique<core::VaeReconstructor>(inv_dim, var_dim,
                                                        options, seed);
      }
      case ReconKind::VanillaAe: {
        core::AutoencoderOptions options = core::AutoencoderOptions::quick();
        if (budget == ReconBudget::Paper) {
          options.hidden.clear();
          options.epochs = 300;
        }
        return std::make_unique<core::AutoencoderReconstructor>(
            inv_dim, var_dim, options, seed);
      }
    }
    throw common::ArgumentError("unknown reconstructor kind");
  };
}

void FsMethod::fit(const DAContext& context) {
  FSDA_CHECK_MSG(context.classifier_factory != nullptr,
                 "FS needs a classifier factory");
  core::PipelineOptions options;
  options.fs = fs_options_;
  options.use_reconstruction = false;
  pipeline_ = std::make_unique<core::FsGanPipeline>(
      context.classifier_factory, nullptr, options, context.seed);
  pipeline_->train(context.source, context.target_few);
}

la::Matrix FsMethod::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(pipeline_ != nullptr, "predict before fit");
  return pipeline_->predict_proba(x_raw);
}

core::FsGanPipeline& FsMethod::pipeline() {
  FSDA_CHECK_MSG(pipeline_ != nullptr, "pipeline before fit");
  return *pipeline_;
}

const core::SeparationResult& FsMethod::separation() const {
  FSDA_CHECK_MSG(pipeline_ != nullptr, "separation before fit");
  return pipeline_->separation();
}

std::string FsReconMethod::name() const { return recon_method_name(kind_); }

void FsReconMethod::fit(const DAContext& context) {
  FSDA_CHECK_MSG(context.classifier_factory != nullptr,
                 "FS+X needs a classifier factory");
  core::PipelineOptions options;
  options.fs = fs_options_;
  options.use_reconstruction = true;
  options.monte_carlo_m = monte_carlo_m_;
  pipeline_ = std::make_unique<core::FsGanPipeline>(
      context.classifier_factory, make_reconstructor_factory(kind_, budget_),
      options, context.seed);
  pipeline_->train(context.source, context.target_few);
}

la::Matrix FsReconMethod::predict_proba(const la::Matrix& x_raw) {
  FSDA_CHECK_MSG(pipeline_ != nullptr, "predict before fit");
  return pipeline_->predict_proba(x_raw);
}

const core::SeparationResult& FsReconMethod::separation() const {
  FSDA_CHECK_MSG(pipeline_ != nullptr, "separation before fit");
  return pipeline_->separation();
}

core::FsGanPipeline& FsReconMethod::pipeline() {
  FSDA_CHECK_MSG(pipeline_ != nullptr, "pipeline before fit");
  return *pipeline_;
}

}  // namespace fsda::baselines
