// fsda::baselines -- CORAL (Correlation Alignment, Sun et al. AAAI'16):
// whitens the source features and re-colors them with the target covariance
// so that second-order statistics match, then trains the downstream model on
// the aligned source plus the labeled target shots.  In the few-shot regime
// the target covariance is estimated with heavy shrinkage toward its
// diagonal -- without it the estimate is singular for shots * classes < d.
#pragma once

#include "baselines/da_method.hpp"
#include "data/scaler.hpp"

namespace fsda::baselines {

class Coral : public DAMethod {
 public:
  /// `shrinkage` in [0,1]; 0 = raw covariance, 1 = diagonal only.
  explicit Coral(double shrinkage = 0.9) : shrinkage_(shrinkage) {}

  [[nodiscard]] std::string name() const override { return "CORAL"; }
  void fit(const DAContext& context) override;
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x_raw) override;

 private:
  double shrinkage_;
  data::StandardScaler scaler_;
  std::unique_ptr<models::Classifier> classifier_;
};

/// The CORAL feature transport: returns source features re-colored to the
/// target's (shrunk) covariance.  Exposed for unit tests.
la::Matrix coral_transform(const la::Matrix& source,
                           const la::Matrix& target, double shrinkage);

}  // namespace fsda::baselines
