// fsda::baselines -- episodic few-shot learners: Matching Networks
// (Vinyals et al. '16) and Prototypical Networks (Snell et al. '17).
//
// Both train an embedding network episodically on the source domain and use
// the labeled target shots at inference: MatchNet classifies a query by
// attention (cosine softmax) over the target support set; ProtoNet updates
// per-class prototypes with the target shots and classifies by distance.
// Model-specific (they are their own architectures), as in the paper.
#pragma once

#include "baselines/da_method.hpp"
#include "data/scaler.hpp"
#include "nn/sequential.hpp"

namespace fsda::baselines {

struct EpisodicOptions {
  std::vector<std::size_t> hidden = {64, 32};
  std::size_t episodes = 300;
  std::size_t support_per_class = 5;
  std::size_t query_per_class = 5;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  double temperature = 0.5;
};

/// Shared episodic embedding trainer (internal base).
class EpisodicNet : public DAMethod {
 public:
  explicit EpisodicNet(EpisodicOptions options)
      : options_(std::move(options)) {}
  [[nodiscard]] bool model_agnostic() const override { return false; }

 protected:
  /// Trains the embedder episodically on the scaled source data.
  void train_embedder(const DAContext& context);

  /// Embedding of (raw) rows through the trained net.
  [[nodiscard]] la::Matrix embed(const la::Matrix& x_raw);

  /// Row-normalized copy (for the cosine-attention variants).
  static la::Matrix normalize_rows(const la::Matrix& m);

  EpisodicOptions options_;
  data::StandardScaler scaler_;
  std::unique_ptr<nn::Sequential> embedder_;
  std::size_t num_classes_ = 0;
  std::size_t embed_dim_ = 0;

 private:
  /// Loss + gradient of one episode; implemented by subclasses.
  virtual double episode_loss(const la::Matrix& z,
                              const std::vector<std::int64_t>& labels,
                              std::size_t support_count,
                              la::Matrix& grad_out) = 0;
};

/// Matching Networks: attention over a labeled support set.
class MatchNet : public EpisodicNet {
 public:
  explicit MatchNet(EpisodicOptions options = {})
      : EpisodicNet(std::move(options)) {}
  [[nodiscard]] std::string name() const override { return "MatchNet"; }
  void fit(const DAContext& context) override;
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x_raw) override;

 private:
  double episode_loss(const la::Matrix& z,
                      const std::vector<std::int64_t>& labels,
                      std::size_t support_count, la::Matrix& grad_out)
      override;

  la::Matrix support_z_;  ///< normalized target support embeddings
  std::vector<std::int64_t> support_y_;
};

/// Prototypical Networks: distance to class prototypes, prototypes updated
/// with the target shots (convex combination with the source prototypes).
class ProtoNet : public EpisodicNet {
 public:
  explicit ProtoNet(EpisodicOptions options = {}, double target_mix = 0.7)
      : EpisodicNet(std::move(options)), target_mix_(target_mix) {}
  [[nodiscard]] std::string name() const override { return "ProtoNet"; }
  void fit(const DAContext& context) override;
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x_raw) override;

 private:
  double episode_loss(const la::Matrix& z,
                      const std::vector<std::int64_t>& labels,
                      std::size_t support_count, la::Matrix& grad_out)
      override;

  double target_mix_;
  la::Matrix prototypes_;  ///< num_classes x embed_dim
};

}  // namespace fsda::baselines
