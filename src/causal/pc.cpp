#include "causal/pc.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"

namespace fsda::causal {

bool for_each_subset(
    const std::vector<std::size_t>& pool, std::size_t k,
    const std::function<bool(std::span<const std::size_t>)>& visit) {
  if (k > pool.size()) return false;
  std::vector<std::size_t> subset(k);
  // Iterative combination enumeration over indices into `pool`.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = pool[idx[i]];
    if (visit(subset)) return true;
    if (k == 0) return false;
    // advance combination
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (idx[pos] != pos + pool.size() - k) break;
      if (pos == 0) return false;
    }
    if (idx[pos] == pos + pool.size() - k) return false;
    ++idx[pos];
    for (std::size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
  }
}

namespace {

/// Applies the three Meek rules until fixpoint.
void apply_meek_rules(Graph& g) {
  const std::size_t n = g.num_nodes();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (!g.has_undirected_edge(a, b)) continue;
        // Rule 1: c -> a -- b with c not adjacent to b  =>  a -> b
        bool oriented = false;
        for (std::size_t c : g.parents(a)) {
          if (c != b && !g.has_edge(c, b)) {
            g.orient(a, b);
            oriented = true;
            break;
          }
        }
        if (oriented) {
          changed = true;
          continue;
        }
        // Rule 2: a -> c -> b with a -- b  =>  a -> b
        for (std::size_t c : g.children(a)) {
          if (c != b && g.has_directed_edge(c, b)) {
            g.orient(a, b);
            oriented = true;
            break;
          }
        }
        if (oriented) {
          changed = true;
          continue;
        }
        // Rule 3: a -- c -> b and a -- d -> b with c,d non-adjacent  =>  a -> b
        const auto nbrs = g.neighbors(a);
        for (std::size_t ci = 0; ci < nbrs.size() && !oriented; ++ci) {
          const std::size_t c = nbrs[ci];
          if (!g.has_undirected_edge(a, c) || !g.has_directed_edge(c, b)) {
            continue;
          }
          for (std::size_t di = ci + 1; di < nbrs.size(); ++di) {
            const std::size_t d = nbrs[di];
            if (g.has_undirected_edge(a, d) && g.has_directed_edge(d, b) &&
                !g.has_edge(c, d)) {
              g.orient(a, b);
              oriented = true;
              changed = true;
              break;
            }
          }
        }
      }
    }
  }
}

}  // namespace

PcResult pc_algorithm(const CiTest& test, const PcOptions& options) {
  const std::size_t n = test.num_variables();
  FSDA_CHECK_MSG(n >= 2, "PC needs at least two variables");
  PcResult result{Graph(n), {}, 0, false};
  Graph& g = result.graph;
  // Start from the complete undirected graph.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_undirected_edge(i, j);
  }

  // Watchdog: past the deadline, stop issuing CI tests; untested edges
  // stay in the skeleton (best-so-far, conservative towards dependence).
  common::Stopwatch deadline_timer;
  const auto past_deadline = [&]() -> bool {
    if (options.deadline_ms == 0) return false;
    if (result.truncated) return true;
    if (deadline_timer.millis() >= static_cast<double>(options.deadline_ms)) {
      result.truncated = true;
      return true;
    }
    return false;
  };

  // Phase 1: skeleton by levelwise CI testing.
  for (std::size_t level = 0;
       level <= options.max_condition_size && !past_deadline(); ++level) {
    bool any_candidate = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (past_deadline()) break;
        if (!g.has_edge(i, j)) continue;
        // Conditioning candidates: neighbors of i or of j, excluding each
        // other (the standard PC-stable-ish pool).
        std::vector<std::size_t> pool;
        for (std::size_t v : g.neighbors(i)) {
          if (v != j) pool.push_back(v);
        }
        for (std::size_t v : g.neighbors(j)) {
          if (v != i && std::find(pool.begin(), pool.end(), v) == pool.end()) {
            pool.push_back(v);
          }
        }
        if (pool.size() < level) continue;
        any_candidate = true;
        bool separated = false;
        for_each_subset(
            pool, level, [&](std::span<const std::size_t> subset) {
              if (past_deadline()) return true;  // keep the edge, stop
              ++result.ci_tests_performed;
              const CiResult ci = test.test(i, j, subset);
              if (ci.independent) {
                result.separating_sets[{i, j}] =
                    std::vector<std::size_t>(subset.begin(), subset.end());
                separated = true;
                return true;
              }
              return false;
            });
        if (separated) g.remove_edge(i, j);
      }
    }
    if (!any_candidate) break;
  }

  // Phase 2: orient v-structures i -> k <- j when k is not in sepset(i, j).
  for (std::size_t k = 0; k < n; ++k) {
    const auto nbrs = g.neighbors(k);
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        const std::size_t i = nbrs[a];
        const std::size_t j = nbrs[b];
        if (g.has_edge(i, j)) continue;  // not an unshielded triple
        const auto key = std::minmax(i, j);
        const auto it = result.separating_sets.find({key.first, key.second});
        const bool k_in_sepset =
            it != result.separating_sets.end() &&
            std::find(it->second.begin(), it->second.end(), k) !=
                it->second.end();
        if (!k_in_sepset) {
          if (g.has_undirected_edge(i, k)) g.orient(i, k);
          if (g.has_undirected_edge(j, k)) g.orient(j, k);
        }
      }
    }
  }

  // F-node constraint: the domain indicator was added manually and can have
  // no incoming causes from the system, i.e. no outgoing edges *from* system
  // variables into it -- in the paper's convention the F-node has no
  // outgoing edges removed from it; we orient every remaining F edge as
  // F -> X (interventions act on features, never the reverse).
  if (options.sink_node) {
    const std::size_t f = *options.sink_node;
    FSDA_CHECK_MSG(f < n, "sink node out of range");
    for (std::size_t x : g.neighbors(f)) {
      if (!g.has_directed_edge(f, x)) g.orient(f, x);
    }
  }

  // Phase 3: Meek propagation.
  apply_meek_rules(g);

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("pc.ci_tests_total", "CI tests run by the PC algorithm")
      .inc(result.ci_tests_performed);
  if (result.truncated) {
    registry
        .counter("pc.truncations_total",
                 "PC runs cut short by their deadline")
        .inc();
  }
  obs::Histogram& sepset_size = registry.histogram(
      "pc.sepset_size", {0.0, 1.0, 2.0, 3.0, 4.0},
      "separating-set sizes found during skeleton pruning");
  for (const auto& [edge, sepset] : result.separating_sets) {
    sepset_size.observe(static_cast<double>(sepset.size()));
  }
  return result;
}

}  // namespace fsda::causal
