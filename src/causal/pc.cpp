#include "causal/pc.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace fsda::causal {

namespace {

/// Applies the three Meek rules until fixpoint.
void apply_meek_rules(Graph& g) {
  const std::size_t n = g.num_nodes();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (!g.has_undirected_edge(a, b)) continue;
        // Rule 1: c -> a -- b with c not adjacent to b  =>  a -> b
        bool oriented = false;
        for (std::size_t c : g.parents(a)) {
          if (c != b && !g.has_edge(c, b)) {
            g.orient(a, b);
            oriented = true;
            break;
          }
        }
        if (oriented) {
          changed = true;
          continue;
        }
        // Rule 2: a -> c -> b with a -- b  =>  a -> b
        for (std::size_t c : g.children(a)) {
          if (c != b && g.has_directed_edge(c, b)) {
            g.orient(a, b);
            oriented = true;
            break;
          }
        }
        if (oriented) {
          changed = true;
          continue;
        }
        // Rule 3: a -- c -> b and a -- d -> b with c,d non-adjacent  =>  a -> b
        const auto nbrs = g.neighbors(a);
        for (std::size_t ci = 0; ci < nbrs.size() && !oriented; ++ci) {
          const std::size_t c = nbrs[ci];
          if (!g.has_undirected_edge(a, c) || !g.has_directed_edge(c, b)) {
            continue;
          }
          for (std::size_t di = ci + 1; di < nbrs.size(); ++di) {
            const std::size_t d = nbrs[di];
            if (g.has_undirected_edge(a, d) && g.has_directed_edge(d, b) &&
                !g.has_edge(c, d)) {
              g.orient(a, b);
              oriented = true;
              changed = true;
              break;
            }
          }
        }
      }
    }
  }
}

}  // namespace

PcResult pc_algorithm(const CiTest& test, const PcOptions& options) {
  const std::size_t n = test.num_variables();
  FSDA_CHECK_MSG(n >= 2, "PC needs at least two variables");
  PcResult result{Graph(n), {}, 0, false};
  Graph& g = result.graph;
  // Start from the complete undirected graph.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_undirected_edge(i, j);
  }

  // Watchdog: past the deadline, stop issuing CI tests; untested edges
  // stay in the skeleton (best-so-far, conservative towards dependence).
  // The sticky flag is shared by every worker, matching the F-node search.
  common::Stopwatch deadline_timer;
  std::atomic<bool> deadline_hit{false};
  const auto past_deadline = [&]() -> bool {
    if (options.deadline_ms == 0) return false;
    if (deadline_hit.load(std::memory_order_relaxed)) return true;
    if (deadline_timer.millis() >= static_cast<double>(options.deadline_ms)) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  // Phase 1: skeleton by levelwise CI testing, PC-stable: the adjacency
  // sets feeding the conditioning pools are frozen at the start of each
  // level and removals are committed only after the whole level finishes,
  // so every edge's test sequence is independent of the order (and thread
  // interleaving) in which the other edges are processed.
  common::Stopwatch skeleton_timer;
  std::atomic<std::size_t> ci_tests{0};
  for (std::size_t level = 0;
       level <= options.max_condition_size && !past_deadline(); ++level) {
    // Frozen adjacency snapshot and the edge worklist for this level.
    std::vector<std::vector<std::size_t>> adjacency(n);
    for (std::size_t i = 0; i < n; ++i) adjacency[i] = g.neighbors(i);
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (g.has_edge(i, j)) edges.emplace_back(i, j);
      }
    }
    // Deferred outcomes, one slot per edge: workers write disjoint slots,
    // the commit below merges them at the level barrier.
    struct EdgeOutcome {
      bool separated = false;
      std::vector<std::size_t> sepset;
    };
    std::vector<EdgeOutcome> outcomes(edges.size());
    std::atomic<bool> any_candidate{false};

    auto process_edges = [&](std::size_t begin, std::size_t end) {
      // Conditioning-pool scratch, sized once per worker chunk: the
      // membership bitmap replaces the former std::find dedup (O(deg^2)
      // per edge) with O(deg) flag checks.
      std::vector<char> in_pool(n, 0);
      std::vector<std::size_t> pool;
      pool.reserve(n);
      for (std::size_t e = begin; e < end; ++e) {
        if (past_deadline()) break;  // remaining edges stay untested
        const auto [i, j] = edges[e];
        // Conditioning candidates: frozen neighbors of i or of j,
        // excluding each other.
        pool.clear();
        for (std::size_t v : adjacency[i]) {
          if (v != j) {
            in_pool[v] = 1;
            pool.push_back(v);
          }
        }
        for (std::size_t v : adjacency[j]) {
          if (v != i && !in_pool[v]) pool.push_back(v);
        }
        for (std::size_t v : pool) in_pool[v] = 0;
        if (pool.size() < level) continue;
        any_candidate.store(true, std::memory_order_relaxed);
        for_each_subset(pool, level, [&](std::span<const std::size_t> subset) {
          if (past_deadline()) return true;  // keep the edge, stop
          ci_tests.fetch_add(1, std::memory_order_relaxed);
          const CiResult ci = test.test(i, j, subset);
          if (ci.independent) {
            outcomes[e].separated = true;
            outcomes[e].sepset.assign(subset.begin(), subset.end());
            return true;
          }
          return false;
        });
      }
    };
    if (options.parallel) {
      common::parallel_for_chunked(edges.size(), process_edges);
    } else {
      process_edges(0, edges.size());
    }

    // Level barrier: commit removals and separating sets in edge order.
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!outcomes[e].separated) continue;
      g.remove_edge(edges[e].first, edges[e].second);
      result.separating_sets[edges[e]] = std::move(outcomes[e].sepset);
    }
    if (!any_candidate.load()) break;
  }
  result.ci_tests_performed = ci_tests.load();
  result.truncated = deadline_hit.load();
  const double skeleton_seconds = skeleton_timer.seconds();

  // Phase 2: orient v-structures i -> k <- j when k is not in sepset(i, j).
  for (std::size_t k = 0; k < n; ++k) {
    const auto nbrs = g.neighbors(k);
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        const std::size_t i = nbrs[a];
        const std::size_t j = nbrs[b];
        if (g.has_edge(i, j)) continue;  // not an unshielded triple
        const auto key = std::minmax(i, j);
        const auto it = result.separating_sets.find({key.first, key.second});
        const bool k_in_sepset =
            it != result.separating_sets.end() &&
            std::find(it->second.begin(), it->second.end(), k) !=
                it->second.end();
        if (!k_in_sepset) {
          if (g.has_undirected_edge(i, k)) g.orient(i, k);
          if (g.has_undirected_edge(j, k)) g.orient(j, k);
        }
      }
    }
  }

  // F-node constraint: the domain indicator was added manually and can have
  // no incoming causes from the system, i.e. no outgoing edges *from* system
  // variables into it -- in the paper's convention the F-node has no
  // outgoing edges removed from it; we orient every remaining F edge as
  // F -> X (interventions act on features, never the reverse).
  if (options.sink_node) {
    const std::size_t f = *options.sink_node;
    FSDA_CHECK_MSG(f < n, "sink node out of range");
    for (std::size_t x : g.neighbors(f)) {
      if (!g.has_directed_edge(f, x)) g.orient(f, x);
    }
  }

  // Phase 3: Meek propagation.
  apply_meek_rules(g);

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("pc.ci_tests_total", "CI tests run by the PC algorithm")
      .inc(result.ci_tests_performed);
  if (skeleton_seconds > 0.0 && result.ci_tests_performed > 0) {
    registry
        .gauge("pc.ci_tests_per_second",
               "CI-test throughput of the most recent PC skeleton phase")
        .set(static_cast<double>(result.ci_tests_performed) /
             skeleton_seconds);
  }
  if (result.truncated) {
    registry
        .counter("pc.truncations_total",
                 "PC runs cut short by their deadline")
        .inc();
  }
  obs::Histogram& sepset_size = registry.histogram(
      "pc.sepset_size", {0.0, 1.0, 2.0, 3.0, 4.0},
      "separating-set sizes found during skeleton pruning");
  for (const auto& [edge, sepset] : result.separating_sets) {
    sepset_size.observe(static_cast<double>(sepset.size()));
  }
  return result;
}

}  // namespace fsda::causal
