// fsda::causal -- the PC algorithm (Spirtes, Glymour, Scheines).
//
// Phase 1 learns the skeleton by levelwise CI tests in the PC-stable
// variant (Colombo & Maathuis): adjacency sets are frozen at the start of
// each level and edge removals are committed only at the level barrier, so
// the per-edge tests are order-independent and run in parallel on the
// global thread pool without changing the result.  Phase 2 orients
// v-structures from the recorded separating sets; phase 3 applies the Meek
// rules to propagate orientations.  The result is a CPDAG.
//
// The FS method does not need the full graph -- it uses the targeted F-node
// search in fnode.hpp -- but the complete PC implementation is part of the
// public causal API and is what the paper's Section V-A2 references.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "causal/ci_test.hpp"
#include "causal/graph.hpp"

namespace fsda::causal {

/// Options controlling the PC search.
struct PcOptions {
  /// Largest conditioning-set size tried during skeleton search.
  std::size_t max_condition_size = 3;
  /// Node whose outgoing edges are forbidden (the manually added F-node of
  /// the FS formulation); nullopt for a plain PC run.
  std::optional<std::size_t> sink_node;
  /// Wall-clock watchdog in milliseconds (0 = unbounded).  On budget
  /// exhaustion the skeleton search stops issuing CI tests: edges not yet
  /// separated stay in the graph (best-so-far, conservative towards
  /// keeping dependence) and `PcResult::truncated` is set.  Orientation
  /// phases still run on the partial skeleton.
  std::size_t deadline_ms = 0;
  /// Run each level's per-edge CI tests on the global thread pool.  The
  /// PC-stable freeze makes the tests order-independent, so serial and
  /// parallel runs produce identical skeletons and separating sets
  /// (deadline-truncated runs excepted: which edges got tested before the
  /// cutoff then depends on scheduling).
  bool parallel = true;
};

/// Result of a PC run: the CPDAG plus the separating sets found.
struct PcResult {
  Graph graph;
  /// sepset[{i,j}] = conditioning set that separated i and j (i < j).
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      separating_sets;
  std::size_t ci_tests_performed = 0;
  /// True when PcOptions::deadline_ms expired mid-skeleton; the CPDAG is
  /// then built from a partial skeleton, not an exhaustive one.
  bool truncated = false;
};

/// Runs PC with the given CI oracle over all variables of the test.
PcResult pc_algorithm(const CiTest& test, const PcOptions& options = {});

/// Enumerates all k-subsets of `pool` in lexicographic order, invoking
/// `visit(std::span<const std::size_t>)` for each; `visit` returns true to
/// stop early (subset found), and for_each_subset returns whether it was
/// stopped.  Templated on the visitor so the innermost CI-test loop inlines
/// the callback instead of paying a std::function indirect call per subset;
/// subsets of size <= 8 (every real conditioning level) enumerate without
/// touching the heap.
template <typename Visitor>
bool for_each_subset(const std::vector<std::size_t>& pool, std::size_t k,
                     Visitor&& visit) {
  if (k > pool.size()) return false;
  constexpr std::size_t kInline = 8;
  std::array<std::size_t, kInline> subset_buf{};
  std::array<std::size_t, kInline> idx_buf{};
  std::vector<std::size_t> subset_heap;
  std::vector<std::size_t> idx_heap;
  std::size_t* subset = subset_buf.data();
  std::size_t* idx = idx_buf.data();
  if (k > kInline) {
    subset_heap.resize(k);
    idx_heap.resize(k);
    subset = subset_heap.data();
    idx = idx_heap.data();
  }
  // Iterative combination enumeration over indices into `pool`.
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = pool[idx[i]];
    if (visit(std::span<const std::size_t>(subset, k))) return true;
    if (k == 0) return false;
    // advance combination
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (idx[pos] != pos + pool.size() - k) break;
      if (pos == 0) return false;
    }
    if (idx[pos] == pos + pool.size() - k) return false;
    ++idx[pos];
    for (std::size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
  }
}

}  // namespace fsda::causal
