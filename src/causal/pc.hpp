// fsda::causal -- the PC algorithm (Spirtes, Glymour, Scheines).
//
// Phase 1 learns the skeleton by levelwise CI tests with conditioning sets
// drawn from current adjacencies; phase 2 orients v-structures from the
// recorded separating sets; phase 3 applies the Meek rules to propagate
// orientations.  The result is a CPDAG.
//
// The FS method does not need the full graph -- it uses the targeted F-node
// search in fnode.hpp -- but the complete PC implementation is part of the
// public causal API and is what the paper's Section V-A2 references.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "causal/ci_test.hpp"
#include "causal/graph.hpp"

namespace fsda::causal {

/// Options controlling the PC search.
struct PcOptions {
  /// Largest conditioning-set size tried during skeleton search.
  std::size_t max_condition_size = 3;
  /// Node whose outgoing edges are forbidden (the manually added F-node of
  /// the FS formulation); nullopt for a plain PC run.
  std::optional<std::size_t> sink_node;
  /// Wall-clock watchdog in milliseconds (0 = unbounded).  On budget
  /// exhaustion the skeleton search stops issuing CI tests: edges not yet
  /// separated stay in the graph (best-so-far, conservative towards
  /// keeping dependence) and `PcResult::truncated` is set.  Orientation
  /// phases still run on the partial skeleton.
  std::size_t deadline_ms = 0;
};

/// Result of a PC run: the CPDAG plus the separating sets found.
struct PcResult {
  Graph graph;
  /// sepset[{i,j}] = conditioning set that separated i and j (i < j).
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      separating_sets;
  std::size_t ci_tests_performed = 0;
  /// True when PcOptions::deadline_ms expired mid-skeleton; the CPDAG is
  /// then built from a partial skeleton, not an exhaustive one.
  bool truncated = false;
};

/// Runs PC with the given CI oracle over all variables of the test.
PcResult pc_algorithm(const CiTest& test, const PcOptions& options = {});

/// Enumerates all k-subsets of `pool`, invoking `visit` for each; `visit`
/// returns true to stop early (subset found).  Exposed for testing.
bool for_each_subset(const std::vector<std::size_t>& pool, std::size_t k,
                     const std::function<bool(std::span<const std::size_t>)>&
                         visit);

}  // namespace fsda::causal
