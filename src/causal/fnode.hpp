// fsda::causal -- targeted F-node search: the scalable core of the paper's
// feature-separation method (Section V-A).
//
// Following the Ψ-FCI formulation adapted to our no-latent-confounder
// setting, the source dataset is labeled F=0 and the target dataset F=1;
// the F-node is constrained to have no outgoing edges, and -- as the paper
// notes in Section VI-D -- the search "focuses solely on direct relationships
// with the F-node, rather than constructing the entire causal graph".
//
// Concretely, for each feature X we run a levelwise PC-style edge test
// against F: at level l we try conditioning sets S of size l drawn from a
// screened candidate-parent pool of X (the features most correlated with X),
// and remove the X--F edge as soon as some S renders X ⊥ F | S.  Features
// whose edge survives every level are the intervention targets, i.e. the
// domain-variant features (eq. 3-4 of the paper).
//
// Two re-adaptation fast paths (DESIGN.md §16):
//  - The search can run from GramStats sufficient statistics instead of
//    materialized rows: the combined [source; target; F] correlation matrix
//    assembles in O(d²), so repeated re-adaptations skip the O(n·d²)
//    column scans entirely.
//  - The search can warm-start from a previous generation's separating
//    sets: each previously-invariant feature is probed with its old sepset
//    first and the level enumeration is skipped on reconfirmation.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"
#include "la/stats.hpp"

namespace fsda::causal {

/// Warm-start policy for seeding the search with a previous partition's
/// separating sets.
enum class WarmStart {
  Off,
  /// Probe old sepsets first, but only exit early when the probe is
  /// provably within the cold search's tried set (subset of the current
  /// candidate pool, level within max_condition_size, enumeration rank
  /// within max_subsets_per_level).  The returned partition is IDENTICAL
  /// to a cold run on the same correlation matrix; the only cost is at
  /// most one extra CI test per non-reconfirmed feature.
  Full,
  /// Probe old sepsets first regardless of enumeration rank and cap the
  /// per-level subset budget at FNodeOptions::warm_budget -- a bounded
  /// search for deadline pressure that may deviate from the cold
  /// partition (validation gates guard the result).
  Budgeted,
};

/// Options for the targeted search.
struct FNodeOptions {
  /// Significance level of the Fisher-z tests.
  double alpha = 0.01;
  /// Largest conditioning-set size tried per feature.
  std::size_t max_condition_size = 2;
  /// Size of the screened candidate-parent pool per feature.
  std::size_t candidate_pool = 8;
  /// Cap on subsets tried per level per feature (0 = exhaustive).
  std::size_t max_subsets_per_level = 64;
  /// Run the per-feature loop on the global thread pool.
  bool parallel = true;
  /// Wall-clock watchdog in milliseconds (0 = unbounded).  On budget
  /// exhaustion the search stops issuing CI tests and returns the
  /// best-so-far partition with `truncated` set: features whose levelwise
  /// search was cut short keep their marginal verdict (dependent ->
  /// variant), and features never tested default to invariant.
  std::size_t deadline_ms = 0;
  /// Warm-start policy; only takes effect when a seed is passed to
  /// find_intervention_targets.
  WarmStart warm = WarmStart::Off;
  /// Per-level subset cap under WarmStart::Budgeted.
  std::size_t warm_budget = 8;
};

/// Previous-generation state seeding a warm-started search.
struct FNodeSeed {
  /// Separating set per feature (FNodeResult::sepsets of the previous
  /// search).  Empty inner vectors (level-0 / variant features) are not
  /// probed -- marginally independent features already exit in phase 1.
  std::vector<std::vector<std::size_t>> sepsets;
};

/// Outcome of the targeted F-node search.
struct FNodeResult {
  std::vector<std::size_t> variant;    ///< intervention targets R (eq. 4)
  std::vector<std::size_t> invariant;  ///< V \ R
  /// Marginal X ⊥ F p-value per feature (diagnostic).
  std::vector<double> marginal_p;
  /// Separating set that rendered X ⊥ F | S, per feature: empty for
  /// marginally independent (level 0) and for variant features.  Feed back
  /// as FNodeSeed::sepsets to warm-start the next search.
  std::vector<std::vector<std::size_t>> sepsets;
  std::size_t ci_tests_performed = 0;
  /// Warm-start probes that reconfirmed their old sepset (level search
  /// skipped entirely).
  std::size_t warm_reconfirmed = 0;
  /// True when FNodeOptions::deadline_ms expired before the search
  /// completed; the partition is then best-so-far, not exhaustive.
  bool truncated = false;
};

/// Runs the targeted search on already-combined data.
///
/// `source` and `target` are row-sample matrices over the same d features.
/// Returns the variant/invariant partition of the d features.  `seed`
/// (optional) enables the warm-start policy in `options.warm`.
FNodeResult find_intervention_targets(const la::Matrix& source,
                                      const la::Matrix& target,
                                      const FNodeOptions& options = {},
                                      const FNodeSeed* seed = nullptr);

/// Runs the identical search from sufficient statistics: the combined
/// correlation (with the F-node appended) is assembled in O(d²) from
/// `source` and `target` GramStats over the same d scaled features, so no
/// combined matrix is materialized and no rows are rescanned.  The
/// effective Fisher-z sample size is round(source.weight() +
/// target.weight()).  Statistics must be accumulated over the SAME scaled
/// representation the materialized path would see.
FNodeResult find_intervention_targets(const la::GramStats& source,
                                      const la::GramStats& target,
                                      const FNodeOptions& options = {},
                                      const FNodeSeed* seed = nullptr);

}  // namespace fsda::causal
