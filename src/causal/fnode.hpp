// fsda::causal -- targeted F-node search: the scalable core of the paper's
// feature-separation method (Section V-A).
//
// Following the Ψ-FCI formulation adapted to our no-latent-confounder
// setting, the source dataset is labeled F=0 and the target dataset F=1;
// the F-node is constrained to have no outgoing edges, and -- as the paper
// notes in Section VI-D -- the search "focuses solely on direct relationships
// with the F-node, rather than constructing the entire causal graph".
//
// Concretely, for each feature X we run a levelwise PC-style edge test
// against F: at level l we try conditioning sets S of size l drawn from a
// screened candidate-parent pool of X (the features most correlated with X),
// and remove the X--F edge as soon as some S renders X ⊥ F | S.  Features
// whose edge survives every level are the intervention targets, i.e. the
// domain-variant features (eq. 3-4 of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace fsda::causal {

/// Options for the targeted search.
struct FNodeOptions {
  /// Significance level of the Fisher-z tests.
  double alpha = 0.01;
  /// Largest conditioning-set size tried per feature.
  std::size_t max_condition_size = 2;
  /// Size of the screened candidate-parent pool per feature.
  std::size_t candidate_pool = 8;
  /// Cap on subsets tried per level per feature (0 = exhaustive).
  std::size_t max_subsets_per_level = 64;
  /// Run the per-feature loop on the global thread pool.
  bool parallel = true;
  /// Wall-clock watchdog in milliseconds (0 = unbounded).  On budget
  /// exhaustion the search stops issuing CI tests and returns the
  /// best-so-far partition with `truncated` set: features whose levelwise
  /// search was cut short keep their marginal verdict (dependent ->
  /// variant), and features never tested default to invariant.
  std::size_t deadline_ms = 0;
};

/// Outcome of the targeted F-node search.
struct FNodeResult {
  std::vector<std::size_t> variant;    ///< intervention targets R (eq. 4)
  std::vector<std::size_t> invariant;  ///< V \ R
  /// Marginal X ⊥ F p-value per feature (diagnostic).
  std::vector<double> marginal_p;
  std::size_t ci_tests_performed = 0;
  /// True when FNodeOptions::deadline_ms expired before the search
  /// completed; the partition is then best-so-far, not exhaustive.
  bool truncated = false;
};

/// Runs the targeted search on already-combined data.
///
/// `source` and `target` are row-sample matrices over the same d features.
/// Returns the variant/invariant partition of the d features.
FNodeResult find_intervention_targets(const la::Matrix& source,
                                      const la::Matrix& target,
                                      const FNodeOptions& options = {});

}  // namespace fsda::causal
