#include "causal/graph.hpp"

#include <deque>
#include <sstream>

#include "common/error.hpp"

namespace fsda::causal {

Graph::Graph(std::size_t n) : n_(n), marks_(n * n, EdgeMark::None) {
  FSDA_CHECK_MSG(n > 0, "empty graph");
}

void Graph::check_node(std::size_t i) const {
  FSDA_CHECK_MSG(i < n_, "node " << i << " out of " << n_);
}

bool Graph::has_edge(std::size_t i, std::size_t j) const {
  check_node(i);
  check_node(j);
  return mark(i, j) != EdgeMark::None;
}

bool Graph::has_directed_edge(std::size_t i, std::size_t j) const {
  check_node(i);
  check_node(j);
  return mark(i, j) == EdgeMark::To;
}

bool Graph::has_undirected_edge(std::size_t i, std::size_t j) const {
  check_node(i);
  check_node(j);
  return mark(i, j) == EdgeMark::Undirected;
}

void Graph::add_undirected_edge(std::size_t i, std::size_t j) {
  check_node(i);
  check_node(j);
  FSDA_CHECK_MSG(i != j, "self-loop on node " << i);
  set_mark(i, j, EdgeMark::Undirected);
  set_mark(j, i, EdgeMark::Undirected);
}

void Graph::orient(std::size_t i, std::size_t j) {
  FSDA_CHECK_MSG(has_edge(i, j), "orienting a non-existent edge " << i << "-"
                                                                  << j);
  set_mark(i, j, EdgeMark::To);
  set_mark(j, i, EdgeMark::From);
}

void Graph::remove_edge(std::size_t i, std::size_t j) {
  check_node(i);
  check_node(j);
  set_mark(i, j, EdgeMark::None);
  set_mark(j, i, EdgeMark::None);
}

std::vector<std::size_t> Graph::neighbors(std::size_t i) const {
  check_node(i);
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != i && mark(i, j) != EdgeMark::None) out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> Graph::parents(std::size_t i) const {
  check_node(i);
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < n_; ++j) {
    if (mark(j, i) == EdgeMark::To) out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> Graph::children(std::size_t i) const {
  check_node(i);
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < n_; ++j) {
    if (mark(i, j) == EdgeMark::To) out.push_back(j);
  }
  return out;
}

std::size_t Graph::num_edges() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (mark(i, j) != EdgeMark::None) ++count;
    }
  }
  return count;
}

bool Graph::has_directed_path(std::size_t i, std::size_t j) const {
  check_node(i);
  check_node(j);
  std::vector<bool> visited(n_, false);
  std::deque<std::size_t> frontier{i};
  visited[i] = true;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop_front();
    for (std::size_t v : children(u)) {
      if (v == j) return true;
      if (!visited[v]) {
        visited[v] = true;
        frontier.push_back(v);
      }
    }
  }
  return false;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(" << n_ << " nodes):";
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      switch (mark(i, j)) {
        case EdgeMark::None:
          break;
        case EdgeMark::Undirected:
          os << " " << i << "--" << j;
          break;
        case EdgeMark::To:
          os << " " << i << "->" << j;
          break;
        case EdgeMark::From:
          os << " " << j << "->" << i;
          break;
      }
    }
  }
  return os.str();
}

}  // namespace fsda::causal
