#include "causal/fnode.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "causal/ci_test.hpp"
#include "causal/pc.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace fsda::causal {

FNodeResult find_intervention_targets(const la::Matrix& source,
                                      const la::Matrix& target,
                                      const FNodeOptions& options) {
  FSDA_CHECK_MSG(source.cols() == target.cols(),
                 "source/target feature mismatch: " << source.cols() << " vs "
                                                    << target.cols());
  FSDA_CHECK_MSG(source.rows() >= 8, "too few source samples");
  FSDA_CHECK_MSG(target.rows() >= 1, "no target samples");
  const std::size_t d = source.cols();

  // Build the combined dataset D* with the F-node appended as column d
  // (eq. 1: P*(V|F=0) = P_A, P*(V|F=1) = P_C).
  la::Matrix combined = source.vcat(target);
  la::Matrix f_col(combined.rows(), 1, 0.0);
  for (std::size_t r = source.rows(); r < combined.rows(); ++r) {
    f_col(r, 0) = 1.0;
  }
  combined = combined.hcat(f_col);
  const std::size_t f_index = d;

  const FisherZTest test(combined, options.alpha);
  const la::Matrix& corr = test.correlation_matrix();

  FNodeResult result;
  result.marginal_p.assign(d, 1.0);
  std::vector<char> is_variant(d, 0);
  std::vector<char> marginally_independent(d, 0);
  std::atomic<std::size_t> tests_performed{0};

  // Watchdog: once the deadline fires, every worker short-circuits and the
  // result is flagged truncated.  The flag is sticky so the wall clock is
  // consulted at most once per deadline overrun per worker.
  common::Stopwatch deadline_timer;
  std::atomic<bool> deadline_hit{false};
  const auto past_deadline = [&]() -> bool {
    if (options.deadline_ms == 0) return false;
    if (deadline_hit.load(std::memory_order_relaxed)) return true;
    if (deadline_timer.millis() >=
        static_cast<double>(options.deadline_ms)) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  // Phase 1: marginal tests X ⊥ F for every feature.  Features passing are
  // invariant at level 0 AND become the candidate conditioning pool for
  // phase 2: a valid separating set must not contain descendants of F
  // (children of F are the intervened features themselves; conditioning on
  // a co-intervened sibling spuriously explains the shift away), so we only
  // condition on features that already look F-independent.
  auto marginal_phase = [&](std::size_t x) {
    if (past_deadline()) {
      // Untested feature: no evidence of dependence, default to invariant
      // (marginal_p stays 1.0); the truncation flag tells the caller.
      marginally_independent[x] = 1;
      return;
    }
    const CiResult marginal = test.test(x, f_index, {});
    tests_performed.fetch_add(1, std::memory_order_relaxed);
    result.marginal_p[x] = marginal.p_value;
    marginally_independent[x] = marginal.independent ? 1 : 0;
  };
  if (options.parallel) {
    common::parallel_for(d, marginal_phase);
  } else {
    for (std::size_t x = 0; x < d; ++x) marginal_phase(x);
  }

  // Separating-set size distribution: level 0 for marginally independent
  // features, the successful level L otherwise.  Hoisted once; observe() is
  // wait-free and safe from pool workers.
  obs::Histogram& sepset_size = obs::MetricsRegistry::global().histogram(
      "fs.sepset_size", {0.0, 1.0, 2.0, 3.0, 4.0},
      "separating-set size at which features tested F-independent");
  for (std::size_t x = 0; x < d; ++x) {
    if (marginally_independent[x]) sepset_size.observe(0.0);
  }

  auto process_feature = [&](std::size_t x) {
    if (marginally_independent[x]) return;  // invariant at level 0

    // Screen the candidate-parent pool: marginally F-independent features
    // most correlated with X.  If X's marginal dependence on F is mediated
    // by its (non-intervened) causal parents, those parents are strongly
    // correlated with X and conditioning on them separates X from F.
    std::vector<std::size_t> pool;
    pool.reserve(d);
    for (std::size_t a = 0; a < d; ++a) {
      if (a != x && marginally_independent[a]) pool.push_back(a);
    }
    std::sort(pool.begin(), pool.end(), [&](std::size_t a, std::size_t b) {
      return std::abs(corr(x, a)) > std::abs(corr(x, b));
    });
    if (pool.size() > options.candidate_pool) {
      pool.resize(options.candidate_pool);
    }

    for (std::size_t level = 1; level <= options.max_condition_size; ++level) {
      if (pool.size() < level) break;
      if (past_deadline()) break;  // keep the marginal verdict: variant
      std::size_t tried = 0;
      bool found_separator = false;
      for_each_subset(pool, level, [&](std::span<const std::size_t> subset) {
        if (options.max_subsets_per_level != 0 &&
            tried >= options.max_subsets_per_level) {
          return true;  // subset budget exhausted; stop enumerating
        }
        if (past_deadline()) return true;  // watchdog: stop enumerating
        ++tried;
        tests_performed.fetch_add(1, std::memory_order_relaxed);
        if (test.test(x, f_index, subset).independent) {
          found_separator = true;
          return true;
        }
        return false;
      });
      if (found_separator) {
        sepset_size.observe(static_cast<double>(level));
        return;  // invariant: some S gives X ⊥ F | S
      }
    }
    is_variant[x] = 1;  // edge X -- F survived: intervention target (eq. 3)
  };

  if (options.parallel) {
    common::parallel_for(d, process_feature);
  } else {
    for (std::size_t x = 0; x < d; ++x) process_feature(x);
  }

  for (std::size_t x = 0; x < d; ++x) {
    if (is_variant[x]) result.variant.push_back(x);
    else result.invariant.push_back(x);
  }
  result.ci_tests_performed = tests_performed.load();
  result.truncated = deadline_hit.load();
  const double search_seconds = deadline_timer.seconds();
  auto& registry = obs::MetricsRegistry::global();
  registry
      .counter("fs.ci_tests_total", "CI tests run by the F-node search")
      .inc(result.ci_tests_performed);
  if (search_seconds > 0.0 && result.ci_tests_performed > 0) {
    registry
        .gauge("fs.ci_tests_per_second",
               "CI-test throughput of the most recent F-node search")
        .set(static_cast<double>(result.ci_tests_performed) / search_seconds);
  }
  if (result.truncated) {
    registry
        .counter("fs.truncations_total",
                 "F-node searches cut short by their deadline")
        .inc();
  }
  FSDA_LOG_INFO << "FNodeSearch: " << result.variant.size() << "/" << d
                << " variant features, " << result.ci_tests_performed
                << " CI tests"
                << (result.truncated ? " (deadline truncated)" : "");
  return result;
}

}  // namespace fsda::causal
