#include "causal/fnode.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <string>

#include "causal/ci_test.hpp"
#include "causal/pc.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace fsda::causal {

namespace {

/// Saturating binomial coefficient (the rank bound below only ever compares
/// against a subset budget, so overflow saturates harmlessly).
std::uint64_t binom_sat(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t acc = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::uint64_t num = static_cast<std::uint64_t>(n - k + i);
    if (acc > std::numeric_limits<std::uint64_t>::max() / num) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    acc = acc * num / i;
  }
  return acc;
}

/// Lexicographic rank of the sorted position-combination `pos` (ascending,
/// drawn from {0..n-1}) in for_each_subset's enumeration order -- i.e. how
/// many subsets the cold search tries before reaching this one.
std::uint64_t subset_lex_rank(std::span<const std::size_t> pos,
                              std::size_t n) {
  std::uint64_t rank = 0;
  std::size_t from = 0;
  const std::size_t k = pos.size();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t v = from; v < pos[i]; ++v) {
      const std::uint64_t skipped = binom_sat(n - 1 - v, k - 1 - i);
      if (rank > std::numeric_limits<std::uint64_t>::max() - skipped) {
        return std::numeric_limits<std::uint64_t>::max();
      }
      rank += skipped;
    }
    from = pos[i] + 1;
  }
  return rank;
}

/// The shared levelwise search core: everything after the correlation
/// matrix exists.  `test` wraps either a materialized combined matrix (cold
/// path) or a GramStats-assembled correlation (fast path); the F-node is
/// column `d` of the test's variables.
FNodeResult run_search(const FisherZTest& test, const FNodeOptions& options,
                       const FNodeSeed* seed) {
  const std::size_t d = test.num_variables() - 1;
  const std::size_t f_index = d;
  const la::Matrix& corr = test.correlation_matrix();

  FNodeResult result;
  result.marginal_p.assign(d, 1.0);
  result.sepsets.assign(d, {});
  std::vector<char> is_variant(d, 0);
  std::vector<char> marginally_independent(d, 0);
  std::atomic<std::size_t> tests_performed{0};
  std::atomic<std::size_t> warm_reconfirmed{0};
  const bool warm_on = seed != nullptr && options.warm != WarmStart::Off;

  // Watchdog: once the deadline fires, every worker short-circuits and the
  // result is flagged truncated.  The flag is sticky so the wall clock is
  // consulted at most once per deadline overrun per worker.
  common::Stopwatch deadline_timer;
  std::atomic<bool> deadline_hit{false};
  const auto past_deadline = [&]() -> bool {
    if (options.deadline_ms == 0) return false;
    if (deadline_hit.load(std::memory_order_relaxed)) return true;
    if (deadline_timer.millis() >=
        static_cast<double>(options.deadline_ms)) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  // Phase 1: marginal tests X ⊥ F for every feature.  Features passing are
  // invariant at level 0 AND become the candidate conditioning pool for
  // phase 2: a valid separating set must not contain descendants of F
  // (children of F are the intervened features themselves; conditioning on
  // a co-intervened sibling spuriously explains the shift away), so we only
  // condition on features that already look F-independent.
  auto marginal_phase = [&](std::size_t x) {
    if (past_deadline()) {
      // Untested feature: no evidence of dependence, default to invariant
      // (marginal_p stays 1.0); the truncation flag tells the caller.
      marginally_independent[x] = 1;
      return;
    }
    const CiResult marginal = test.test(x, f_index, {});
    tests_performed.fetch_add(1, std::memory_order_relaxed);
    result.marginal_p[x] = marginal.p_value;
    marginally_independent[x] = marginal.independent ? 1 : 0;
  };
  if (options.parallel) {
    common::parallel_for(d, marginal_phase);
  } else {
    for (std::size_t x = 0; x < d; ++x) marginal_phase(x);
  }

  // Separating-set size distribution: level 0 for marginally independent
  // features, the successful level L otherwise.  Hoisted once; observe() is
  // wait-free and safe from pool workers.
  obs::Histogram& sepset_size = obs::MetricsRegistry::global().histogram(
      "fs.sepset_size", {0.0, 1.0, 2.0, 3.0, 4.0},
      "separating-set size at which features tested F-independent");
  for (std::size_t x = 0; x < d; ++x) {
    if (marginally_independent[x]) sepset_size.observe(0.0);
  }

  auto process_feature = [&](std::size_t x) {
    if (marginally_independent[x]) return;  // invariant at level 0

    // Screen the candidate-parent pool: marginally F-independent features
    // most correlated with X.  If X's marginal dependence on F is mediated
    // by its (non-intervened) causal parents, those parents are strongly
    // correlated with X and conditioning on them separates X from F.
    std::vector<std::size_t> pool;
    pool.reserve(d);
    for (std::size_t a = 0; a < d; ++a) {
      if (a != x && marginally_independent[a]) pool.push_back(a);
    }
    std::sort(pool.begin(), pool.end(), [&](std::size_t a, std::size_t b) {
      return std::abs(corr(x, a)) > std::abs(corr(x, b));
    });
    if (pool.size() > options.candidate_pool) {
      pool.resize(options.candidate_pool);
    }

    // Warm-start probe: the previous generation separated X from F with
    // S_old -- test that exact set before enumerating anything.  Under
    // Full fidelity the early exit is taken only when the cold search
    // would provably have tried S_old itself (members inside the screened
    // pool, level within budget, lexicographic enumeration rank within
    // max_subsets_per_level): cold declares X invariant iff ANY tried
    // subset separates, so reconfirming a cold-tried subset cannot change
    // the verdict.  When the probe fails (or is ineligible) the normal
    // enumeration below runs in full, with the probe NOT counted against
    // the subset budget -- the Full-mode partition is therefore identical
    // to a cold run, at the cost of at most one extra CI test here.
    const std::vector<std::size_t>* warm_set = nullptr;
    if (warm_on && x < seed->sepsets.size() && !seed->sepsets[x].empty() &&
        seed->sepsets[x].size() <= options.max_condition_size) {
      warm_set = &seed->sepsets[x];
      for (const std::size_t m : *warm_set) {
        // Conditioning on a now-marginally-dependent feature (a freshly
        // intervened one) would spuriously explain the shift away.
        if (m >= d || m == x || !marginally_independent[m]) {
          warm_set = nullptr;
          break;
        }
      }
    }
    if (warm_set != nullptr && options.warm == WarmStart::Full) {
      std::vector<std::size_t> pos;
      pos.reserve(warm_set->size());
      for (const std::size_t m : *warm_set) {
        const auto it = std::find(pool.begin(), pool.end(), m);
        if (it == pool.end()) {
          warm_set = nullptr;
          break;
        }
        pos.push_back(static_cast<std::size_t>(it - pool.begin()));
      }
      if (warm_set != nullptr && options.max_subsets_per_level != 0) {
        std::sort(pos.begin(), pos.end());
        if (subset_lex_rank(pos, pool.size()) >=
            options.max_subsets_per_level) {
          warm_set = nullptr;
        }
      }
    }
    if (warm_set != nullptr && !past_deadline()) {
      tests_performed.fetch_add(1, std::memory_order_relaxed);
      if (test.test(x, f_index, *warm_set).independent) {
        result.sepsets[x] = *warm_set;
        warm_reconfirmed.fetch_add(1, std::memory_order_relaxed);
        sepset_size.observe(static_cast<double>(warm_set->size()));
        return;  // invariant: the old separating set still separates
      }
    }

    std::size_t max_subsets = options.max_subsets_per_level;
    if (warm_on && options.warm == WarmStart::Budgeted) {
      max_subsets = max_subsets == 0
                        ? options.warm_budget
                        : std::min(max_subsets, options.warm_budget);
    }
    for (std::size_t level = 1; level <= options.max_condition_size; ++level) {
      if (pool.size() < level) break;
      if (past_deadline()) break;  // keep the marginal verdict: variant
      std::size_t tried = 0;
      bool found_separator = false;
      for_each_subset(pool, level, [&](std::span<const std::size_t> subset) {
        if (max_subsets != 0 && tried >= max_subsets) {
          return true;  // subset budget exhausted; stop enumerating
        }
        if (past_deadline()) return true;  // watchdog: stop enumerating
        ++tried;
        tests_performed.fetch_add(1, std::memory_order_relaxed);
        if (test.test(x, f_index, subset).independent) {
          found_separator = true;
          result.sepsets[x].assign(subset.begin(), subset.end());
          return true;
        }
        return false;
      });
      if (found_separator) {
        sepset_size.observe(static_cast<double>(level));
        return;  // invariant: some S gives X ⊥ F | S
      }
    }
    is_variant[x] = 1;  // edge X -- F survived: intervention target (eq. 3)
  };

  if (options.parallel) {
    common::parallel_for(d, process_feature);
  } else {
    for (std::size_t x = 0; x < d; ++x) process_feature(x);
  }

  for (std::size_t x = 0; x < d; ++x) {
    if (is_variant[x]) result.variant.push_back(x);
    else result.invariant.push_back(x);
  }
  result.ci_tests_performed = tests_performed.load();
  result.warm_reconfirmed = warm_reconfirmed.load();
  result.truncated = deadline_hit.load();
  const double search_seconds = deadline_timer.seconds();
  auto& registry = obs::MetricsRegistry::global();
  registry
      .counter("fs.ci_tests_total", "CI tests run by the F-node search")
      .inc(result.ci_tests_performed);
  if (search_seconds > 0.0 && result.ci_tests_performed > 0) {
    registry
        .gauge("fs.ci_tests_per_second",
               "CI-test throughput of the most recent F-node search")
        .set(static_cast<double>(result.ci_tests_performed) / search_seconds);
  }
  if (result.warm_reconfirmed > 0) {
    registry
        .counter("fs.warm_reconfirmed_total",
                 "warm-start probes whose old separating set reconfirmed")
        .inc(result.warm_reconfirmed);
  }
  if (result.truncated) {
    registry
        .counter("fs.truncations_total",
                 "F-node searches cut short by their deadline")
        .inc();
  }
  FSDA_LOG_INFO << "FNodeSearch: " << result.variant.size() << "/" << d
                << " variant features, " << result.ci_tests_performed
                << " CI tests"
                << (result.warm_reconfirmed > 0
                        ? " (" + std::to_string(result.warm_reconfirmed) +
                              " warm-reconfirmed)"
                        : "")
                << (result.truncated ? " (deadline truncated)" : "");
  return result;
}

}  // namespace

FNodeResult find_intervention_targets(const la::Matrix& source,
                                      const la::Matrix& target,
                                      const FNodeOptions& options,
                                      const FNodeSeed* seed) {
  FSDA_CHECK_MSG(source.cols() == target.cols(),
                 "source/target feature mismatch: " << source.cols() << " vs "
                                                    << target.cols());
  FSDA_CHECK_MSG(source.rows() >= 8, "too few source samples");
  FSDA_CHECK_MSG(target.rows() >= 1, "no target samples");

  // Build the combined dataset D* with the F-node appended as column d
  // (eq. 1: P*(V|F=0) = P_A, P*(V|F=1) = P_C).
  la::Matrix combined = source.vcat(target);
  la::Matrix f_col(combined.rows(), 1, 0.0);
  for (std::size_t r = source.rows(); r < combined.rows(); ++r) {
    f_col(r, 0) = 1.0;
  }
  combined = combined.hcat(f_col);

  const FisherZTest test(combined, options.alpha);
  return run_search(test, options, seed);
}

FNodeResult find_intervention_targets(const la::GramStats& source,
                                      const la::GramStats& target,
                                      const FNodeOptions& options,
                                      const FNodeSeed* seed) {
  FSDA_CHECK_MSG(source.dim() == target.dim(),
                 "source/target feature mismatch: " << source.dim() << " vs "
                                                    << target.dim());
  FSDA_CHECK_MSG(source.weight() >= 8.0, "too few source samples");
  FSDA_CHECK_MSG(target.weight() > 0.0, "no target samples");
  const la::GramStats combined =
      la::GramStats::with_indicator(source, target);
  const auto n = static_cast<std::size_t>(std::llround(combined.weight()));
  const FisherZTest test(combined.correlation(), n, options.alpha);
  return run_search(test, options, seed);
}

}  // namespace fsda::causal
