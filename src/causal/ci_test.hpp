// fsda::causal -- conditional independence tests.
//
// The FS method (paper Section V-A) decides "X ⊥ F | S" with a CI test; we
// provide the standard Fisher-z partial-correlation test (the workhorse for
// continuous telemetry, treating the binary F-node as numeric / point-
// biserial) and a permutation-based correlation test used as a slower but
// assumption-free cross-check in the test suite.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace fsda::causal {

/// Outcome of one CI test.
struct CiResult {
  double statistic = 0.0;  ///< test statistic (z for Fisher-z)
  double p_value = 1.0;
  bool independent = true;  ///< p_value >= alpha
};

/// Interface: tests column i ⊥ column j given columns `given` in `data`.
/// Implementations must be safe to call concurrently from multiple threads
/// on one const instance: the PC-stable skeleton and the F-node search both
/// issue tests from pool workers in parallel.
class CiTest {
 public:
  virtual ~CiTest() = default;
  [[nodiscard]] virtual CiResult test(std::size_t i, std::size_t j,
                                      std::span<const std::size_t> given)
      const = 0;
  [[nodiscard]] virtual double alpha() const = 0;
  [[nodiscard]] virtual std::size_t num_variables() const = 0;
};

/// Fisher-z test on partial correlations, computed once from the global
/// correlation matrix of the dataset (rows = samples).
///
///   z = sqrt(n - |S| - 3) * atanh(r_{ij.S})
///
/// Independence is declared when the two-sided p-value >= alpha.
class FisherZTest : public CiTest {
 public:
  /// Precomputes the correlation matrix of `data`.
  FisherZTest(const la::Matrix& data, double alpha = 0.01);

  /// Wraps an already-computed correlation matrix -- e.g. one assembled in
  /// O(d²) from GramStats sufficient statistics instead of an O(n·d²) scan
  /// of materialized rows.  `sample_size` is the effective row count behind
  /// `corr` and drives the Fisher-z degrees of freedom exactly as the
  /// data-scanning constructor's row count does.
  FisherZTest(la::Matrix corr, std::size_t sample_size, double alpha);

  [[nodiscard]] CiResult test(std::size_t i, std::size_t j,
                              std::span<const std::size_t> given)
      const override;
  [[nodiscard]] double alpha() const override { return alpha_; }
  [[nodiscard]] std::size_t num_variables() const override {
    return corr_.rows();
  }

  [[nodiscard]] const la::Matrix& correlation_matrix() const { return corr_; }
  [[nodiscard]] std::size_t sample_size() const { return n_; }

 private:
  la::Matrix corr_;
  std::size_t n_;
  double alpha_;
};

/// Permutation test on the (partial) correlation: residualizes i and j on
/// the conditioning set by OLS, then permutes one residual vector B times.
/// Exact in spirit, O(B * n) per test -- used for validation, not at scale.
class PermutationCiTest : public CiTest {
 public:
  PermutationCiTest(la::Matrix data, double alpha = 0.01,
                    std::size_t permutations = 200,
                    std::uint64_t seed = 0xC1C1C1ULL);

  [[nodiscard]] CiResult test(std::size_t i, std::size_t j,
                              std::span<const std::size_t> given)
      const override;
  [[nodiscard]] double alpha() const override { return alpha_; }
  [[nodiscard]] std::size_t num_variables() const override {
    return data_.cols();
  }

 private:
  la::Matrix data_;
  double alpha_;
  std::size_t permutations_;
  std::uint64_t seed_;
};

/// Residual of y regressed on design columns X (with intercept), by OLS.
/// Wraps the batched form below.
std::vector<double> ols_residual(const la::Matrix& x_cols,
                                 std::span<const double> y);

/// Batched OLS residuals: regresses every column of `ys` (n x m) on the same
/// design `x_cols` (with intercept), sharing one Cholesky factorization of
/// X^T X across all targets, and writes the residuals into `residuals`
/// (resized to n x m).  The PC-style CI tests residualize both endpoints on
/// the same conditioning set, so this halves the factorization work.
void ols_residuals_into(const la::Matrix& x_cols, const la::Matrix& ys,
                        la::Matrix& residuals);

}  // namespace fsda::causal
