#include "causal/ci_test.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "la/linalg.hpp"
#include "la/stats.hpp"

namespace fsda::causal {

FisherZTest::FisherZTest(const la::Matrix& data, double alpha)
    : corr_(la::correlation(data)), n_(data.rows()), alpha_(alpha) {
  FSDA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha out of (0,1): " << alpha);
  FSDA_CHECK_MSG(n_ >= 8, "Fisher-z needs a non-trivial sample, got " << n_);
}

CiResult FisherZTest::test(std::size_t i, std::size_t j,
                           std::span<const std::size_t> given) const {
  const double df =
      static_cast<double>(n_) - static_cast<double>(given.size()) - 3.0;
  CiResult result;
  if (df <= 1.0) {
    // Not enough samples to condition this deeply: treat as independent
    // (no evidence either way), matching the conservative PC convention.
    return result;
  }
  double r = la::partial_correlation(corr_, i, j, given);
  r = std::clamp(r, -0.999999, 0.999999);
  const double z = std::sqrt(df) * std::atanh(r);
  result.statistic = z;
  result.p_value = la::two_sided_p(z);
  result.independent = result.p_value >= alpha_;
  return result;
}

std::vector<double> ols_residual(const la::Matrix& x_cols,
                                 std::span<const double> y) {
  const std::size_t n = y.size();
  FSDA_CHECK(x_cols.rows() == n);
  // Design with intercept column.
  la::Matrix design(n, x_cols.cols() + 1, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < x_cols.cols(); ++c) {
      design(r, c + 1) = x_cols(r, c);
    }
  }
  la::Matrix yv(n, 1);
  for (std::size_t r = 0; r < n; ++r) yv(r, 0) = y[r];
  // Normal equations with slight ridge for robustness.
  la::Matrix xtx = design.transposed_matmul(design);
  for (std::size_t d = 0; d < xtx.rows(); ++d) xtx(d, d) += 1e-8;
  const la::Matrix xty = design.transposed_matmul(yv);
  const la::Matrix beta = la::cholesky_solve(xtx, xty);
  const la::Matrix fitted = design.matmul(beta);
  std::vector<double> residual(n);
  for (std::size_t r = 0; r < n; ++r) residual[r] = y[r] - fitted(r, 0);
  return residual;
}

PermutationCiTest::PermutationCiTest(la::Matrix data, double alpha,
                                     std::size_t permutations,
                                     std::uint64_t seed)
    : data_(std::move(data)),
      alpha_(alpha),
      permutations_(permutations),
      seed_(seed) {
  FSDA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha out of (0,1)");
  FSDA_CHECK_MSG(permutations >= 20, "too few permutations");
}

CiResult PermutationCiTest::test(std::size_t i, std::size_t j,
                                 std::span<const std::size_t> given) const {
  FSDA_CHECK(i < data_.cols() && j < data_.cols() && i != j);
  const std::vector<double> xi = data_.col_vector(i);
  const std::vector<double> xj = data_.col_vector(j);
  std::vector<double> ri, rj;
  if (given.empty()) {
    ri = xi;
    rj = xj;
  } else {
    const la::Matrix z = data_.select_cols(given);
    ri = ols_residual(z, xi);
    rj = ols_residual(z, xj);
  }
  const double observed = std::abs(la::pearson(ri, rj));
  // Permutation null: shuffle one residual vector.
  common::Rng rng(seed_ ^ (i * 0x9E37ULL) ^ (j * 0x79B9ULL) ^
                  (given.size() * 0x7F4AULL));
  std::size_t at_least = 0;
  std::vector<double> shuffled = rj;
  for (std::size_t b = 0; b < permutations_; ++b) {
    rng.shuffle(shuffled);
    if (std::abs(la::pearson(ri, shuffled)) >= observed) ++at_least;
  }
  CiResult result;
  result.statistic = observed;
  result.p_value = (static_cast<double>(at_least) + 1.0) /
                   (static_cast<double>(permutations_) + 1.0);
  result.independent = result.p_value >= alpha_;
  return result;
}

}  // namespace fsda::causal
