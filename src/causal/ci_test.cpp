#include "causal/ci_test.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "la/kernels.hpp"
#include "la/linalg.hpp"
#include "la/stats.hpp"
#include "la/view.hpp"

namespace fsda::causal {

FisherZTest::FisherZTest(const la::Matrix& data, double alpha)
    : corr_(la::correlation(data)), n_(data.rows()), alpha_(alpha) {
  FSDA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha out of (0,1): " << alpha);
  FSDA_CHECK_MSG(n_ >= 8, "Fisher-z needs a non-trivial sample, got " << n_);
}

FisherZTest::FisherZTest(la::Matrix corr, std::size_t sample_size,
                         double alpha)
    : corr_(std::move(corr)), n_(sample_size), alpha_(alpha) {
  FSDA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha out of (0,1): " << alpha);
  FSDA_CHECK_MSG(n_ >= 8, "Fisher-z needs a non-trivial sample, got " << n_);
  FSDA_CHECK_MSG(corr_.rows() == corr_.cols() && corr_.rows() > 0,
                 "correlation matrix must be square and non-empty");
}

CiResult FisherZTest::test(std::size_t i, std::size_t j,
                           std::span<const std::size_t> given) const {
  const double df =
      static_cast<double>(n_) - static_cast<double>(given.size()) - 3.0;
  CiResult result;
  if (df <= 1.0) {
    // Not enough samples to condition this deeply: treat as independent
    // (no evidence either way), matching the conservative PC convention.
    return result;
  }
  // One scratch arena per thread: PC-stable and the F-node search fan CI
  // tests out across pool workers, and each worker reuses its arena across
  // every test it runs, so steady-state testing never touches the heap.
  static thread_local la::PartialCorrScratch scratch;
  double r = la::partial_correlation_fast(corr_, i, j, given, scratch);
  r = std::clamp(r, -0.999999, 0.999999);
  const double z = std::sqrt(df) * std::atanh(r);
  result.statistic = z;
  result.p_value = la::two_sided_p(z);
  result.independent = result.p_value >= alpha_;
  return result;
}

void ols_residuals_into(const la::Matrix& x_cols, const la::Matrix& ys,
                        la::Matrix& residuals) {
  const std::size_t n = ys.rows();
  FSDA_CHECK(x_cols.rows() == n);
  // Design with intercept column.
  la::Matrix design(n, x_cols.cols() + 1, 1.0);
  if (x_cols.cols() > 0) {
    la::MatrixView dv(design);
    la::copy_into(x_cols, dv.col_block(1, x_cols.cols()));
  }
  // Normal equations with slight ridge for robustness; one factorization
  // serves every target column.
  la::Matrix xtx(design.cols(), design.cols());
  la::transposed_matmul_into(design, design, xtx);
  for (std::size_t d = 0; d < xtx.rows(); ++d) xtx(d, d) += 1e-8;
  la::Matrix xty(design.cols(), ys.cols());
  la::transposed_matmul_into(design, ys, xty);
  const la::Matrix beta = la::cholesky_solve(xtx, xty);
  la::Matrix fitted(n, ys.cols());
  la::matmul_into(design, beta, fitted);
  residuals.resize(n, ys.cols());
  la::sub_into(ys, fitted, residuals);
}

std::vector<double> ols_residual(const la::Matrix& x_cols,
                                 std::span<const double> y) {
  const std::size_t n = y.size();
  FSDA_CHECK(x_cols.rows() == n);
  la::Matrix yv(n, 1);
  for (std::size_t r = 0; r < n; ++r) yv(r, 0) = y[r];
  la::Matrix res;
  ols_residuals_into(x_cols, yv, res);
  return res.col_vector(0);
}

PermutationCiTest::PermutationCiTest(la::Matrix data, double alpha,
                                     std::size_t permutations,
                                     std::uint64_t seed)
    : data_(std::move(data)),
      alpha_(alpha),
      permutations_(permutations),
      seed_(seed) {
  FSDA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha out of (0,1)");
  FSDA_CHECK_MSG(permutations >= 20, "too few permutations");
}

CiResult PermutationCiTest::test(std::size_t i, std::size_t j,
                                 std::span<const std::size_t> given) const {
  FSDA_CHECK(i < data_.cols() && j < data_.cols() && i != j);
  std::vector<double> ri = data_.col_vector(i);
  std::vector<double> rj = data_.col_vector(j);
  if (!given.empty()) {
    // Residualize both endpoints against the same conditioning set in one
    // batched regression (shared Cholesky factorization).
    const la::Matrix z = data_.select_cols(given);
    la::Matrix ys(data_.rows(), 2);
    for (std::size_t r = 0; r < data_.rows(); ++r) {
      ys(r, 0) = ri[r];
      ys(r, 1) = rj[r];
    }
    la::Matrix res;
    ols_residuals_into(z, ys, res);
    ri = res.col_vector(0);
    rj = res.col_vector(1);
  }
  const double observed = std::abs(la::pearson(ri, rj));
  // Permutation null: shuffle one residual vector.
  common::Rng rng(seed_ ^ (i * 0x9E37ULL) ^ (j * 0x79B9ULL) ^
                  (given.size() * 0x7F4AULL));
  std::size_t at_least = 0;
  std::vector<double> shuffled = rj;
  for (std::size_t b = 0; b < permutations_; ++b) {
    rng.shuffle(shuffled);
    if (std::abs(la::pearson(ri, shuffled)) >= observed) ++at_least;
  }
  CiResult result;
  result.statistic = observed;
  result.p_value = (static_cast<double>(at_least) + 1.0) /
                   (static_cast<double>(permutations_) + 1.0);
  result.independent = result.p_value >= alpha_;
  return result;
}

}  // namespace fsda::causal
