// fsda::causal -- graph types for constraint-based causal discovery.
//
// PC produces a CPDAG: a partially directed graph where directed edges are
// compelled by the data and undirected edges are orientation-ambiguous.
// The graph is stored as a dense adjacency of edge marks, which is the
// convenient representation for the PC orientation (Meek) rules.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fsda::causal {

/// Edge state between an ordered pair (i, j).
enum class EdgeMark : unsigned char {
  None,        ///< no edge between i and j
  Undirected,  ///< i -- j
  To,          ///< i -> j
  From,        ///< i <- j
};

/// A partially directed graph over n nodes.
class Graph {
 public:
  explicit Graph(std::size_t n);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }

  /// True when any edge (directed either way or undirected) joins i and j.
  [[nodiscard]] bool has_edge(std::size_t i, std::size_t j) const;

  /// True for i -> j specifically.
  [[nodiscard]] bool has_directed_edge(std::size_t i, std::size_t j) const;

  /// True for i -- j specifically.
  [[nodiscard]] bool has_undirected_edge(std::size_t i, std::size_t j) const;

  /// Adds an undirected edge (i != j required).
  void add_undirected_edge(std::size_t i, std::size_t j);

  /// Orients an existing edge as i -> j; requires adjacency.
  void orient(std::size_t i, std::size_t j);

  /// Removes any edge between i and j.
  void remove_edge(std::size_t i, std::size_t j);

  /// All nodes adjacent to i (any mark).
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t i) const;

  /// Nodes j with j -> i.
  [[nodiscard]] std::vector<std::size_t> parents(std::size_t i) const;

  /// Nodes j with i -> j.
  [[nodiscard]] std::vector<std::size_t> children(std::size_t i) const;

  /// Total number of edges (each pair counted once).
  [[nodiscard]] std::size_t num_edges() const;

  /// True if a directed path i ->* j exists (directed edges only).
  [[nodiscard]] bool has_directed_path(std::size_t i, std::size_t j) const;

  /// Human-readable edge list.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Graph& other) const = default;

 private:
  void check_node(std::size_t i) const;
  [[nodiscard]] EdgeMark mark(std::size_t i, std::size_t j) const {
    return marks_[i * n_ + j];
  }
  void set_mark(std::size_t i, std::size_t j, EdgeMark m) {
    marks_[i * n_ + j] = m;
  }

  std::size_t n_;
  std::vector<EdgeMark> marks_;  // marks_[i*n+j] describes pair (i, j)
};

}  // namespace fsda::causal
