#include "gmm/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fsda::gmm {

double squared_distance(const la::Matrix& a, std::size_t row_a,
                        const la::Matrix& b, std::size_t row_b) {
  FSDA_CHECK(a.cols() == b.cols());
  const auto ra = a.row(row_a);
  const auto rb = b.row(row_b);
  double acc = 0.0;
  for (std::size_t c = 0; c < ra.size(); ++c) {
    const double d = ra[c] - rb[c];
    acc += d * d;
  }
  return acc;
}

KMeansResult kmeans(const la::Matrix& x, std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations, double tol) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  FSDA_CHECK_MSG(k >= 1 && k <= n, "k out of range: " << k << " for " << n
                                                      << " samples");
  common::Rng rng(seed ^ 0x4B4D45414E53ULL);

  // k-means++ seeding.
  la::Matrix centroids(k, d);
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  {
    const std::size_t first = rng.uniform_index(n);
    centroids.set_row(0, x.row(first));
    for (std::size_t c = 1; c < k; ++c) {
      for (std::size_t r = 0; r < n; ++r) {
        min_dist[r] =
            std::min(min_dist[r], squared_distance(x, r, centroids, c - 1));
      }
      const std::size_t next = rng.categorical(min_dist);
      centroids.set_row(c, x.row(next));
    }
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  double previous_inertia = std::numeric_limits<double>::max();
  for (std::size_t it = 0; it < max_iterations; ++it) {
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double dist = squared_distance(x, r, centroids, c);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      result.assignment[r] = best_c;
      inertia += best;
    }
    // Update step.
    la::Matrix sums(k, d, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t c = result.assignment[r];
      ++counts[c];
      auto sum_row = sums.row(c);
      const auto x_row = x.row(r);
      for (std::size_t f = 0; f < d; ++f) sum_row[f] += x_row[f];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed on the farthest sample.
        std::size_t far = 0;
        double far_dist = -1.0;
        for (std::size_t r = 0; r < n; ++r) {
          const double dist =
              squared_distance(x, r, centroids, result.assignment[r]);
          if (dist > far_dist) {
            far_dist = dist;
            far = r;
          }
        }
        centroids.set_row(c, x.row(far));
        continue;
      }
      auto c_row = centroids.row(c);
      auto sum_row = sums.row(c);
      for (std::size_t f = 0; f < d; ++f) {
        c_row[f] = sum_row[f] / static_cast<double>(counts[c]);
      }
    }
    result.iterations = it + 1;
    result.inertia = inertia;
    if (previous_inertia - inertia < tol * std::max(1.0, previous_inertia)) {
      break;
    }
    previous_inertia = inertia;
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace fsda::gmm
