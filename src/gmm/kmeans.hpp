// fsda::gmm -- k-means with k-means++ seeding (initializer for the EM GMM).
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace fsda::gmm {

struct KMeansResult {
  la::Matrix centroids;                ///< k x d
  std::vector<std::size_t> assignment; ///< per-sample cluster index
  double inertia = 0.0;                ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ initialization.
KMeansResult kmeans(const la::Matrix& x, std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations = 100, double tol = 1e-6);

/// Squared Euclidean distance between a matrix row and a centroid row.
double squared_distance(const la::Matrix& a, std::size_t row_a,
                        const la::Matrix& b, std::size_t row_b);

}  // namespace fsda::gmm
