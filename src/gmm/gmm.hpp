// fsda::gmm -- diagonal-covariance Gaussian Mixture Model fitted by EM.
//
// The 5GIPC dataset of the paper is split into source/target domains by GMM
// clustering (Section IV-B), and Table III uses a three-cluster split.  The
// model is diagonal-covariance: telemetry dimensionality (116 features) makes
// full covariances both ill-conditioned and unnecessary for domain splitting.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace fsda::gmm {

struct GmmOptions {
  std::size_t max_iterations = 200;
  double tol = 1e-5;            ///< relative log-likelihood change to stop
  double variance_floor = 1e-6; ///< per-dimension variance floor
};

/// Fitted mixture: weights pi_k, means mu_k, diagonal variances sigma2_k.
class Gmm {
 public:
  Gmm() = default;

  /// Fits k components with EM, initialized by k-means++.
  void fit(const la::Matrix& x, std::size_t k, std::uint64_t seed,
           const GmmOptions& options = {});

  /// Per-sample posterior responsibilities (n x k).
  [[nodiscard]] la::Matrix responsibilities(const la::Matrix& x) const;

  /// MAP component per sample.
  [[nodiscard]] std::vector<std::size_t> assign(const la::Matrix& x) const;

  /// Mean log-likelihood per sample.
  [[nodiscard]] double mean_log_likelihood(const la::Matrix& x) const;

  /// Bayesian Information Criterion (lower is better).
  [[nodiscard]] double bic(const la::Matrix& x) const;

  [[nodiscard]] std::size_t num_components() const { return weights_.size(); }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] const la::Matrix& means() const { return means_; }
  [[nodiscard]] const la::Matrix& variances() const { return variances_; }
  [[nodiscard]] std::size_t iterations_run() const { return iterations_; }

 private:
  /// Per-sample per-component log joint densities log(pi_k) + log N(x|k).
  [[nodiscard]] la::Matrix log_joint(const la::Matrix& x) const;
  /// Batched destination-passing form: expands the diagonal Mahalanobis
  /// quadratic into two matrix products so the hot EM loop runs on the
  /// blocked matmul kernels instead of a scalar triple loop.
  void log_joint_into(const la::Matrix& x, la::Matrix& out) const;

  std::vector<double> weights_;
  la::Matrix means_;      ///< k x d
  la::Matrix variances_;  ///< k x d
  std::size_t iterations_ = 0;

  // EM scratch buffers (mutable: log_joint_into serves const queries too).
  mutable la::Matrix xsq_;        ///< n x d, x elementwise squared
  mutable la::Matrix inv_var_;    ///< k x d, 1 / sigma2
  mutable la::Matrix scaled_mu_;  ///< k x d, mu / sigma2
  mutable la::Matrix quad_;       ///< n x k, x^2 * inv_var^T
  mutable la::Matrix cross_;      ///< n x k, x * scaled_mu^T
  la::Matrix lj_;                 ///< n x k, EM log joints
  la::Matrix resp_;               ///< n x k, EM responsibilities
  la::Matrix nk_;                 ///< 1 x k, soft counts
};

}  // namespace fsda::gmm
