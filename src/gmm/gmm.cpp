#include "gmm/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"
#include "gmm/kmeans.hpp"

namespace fsda::gmm {

namespace {
/// log-sum-exp over a row span.
double log_sum_exp(std::span<const double> values) {
  const double mx = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(mx)) return mx;
  double acc = 0.0;
  for (double v : values) acc += std::exp(v - mx);
  return mx + std::log(acc);
}
}  // namespace

la::Matrix Gmm::log_joint(const la::Matrix& x) const {
  FSDA_CHECK_MSG(num_components() > 0, "log_joint before fit");
  FSDA_CHECK(x.cols() == means_.cols());
  const std::size_t n = x.rows();
  const std::size_t k = num_components();
  const std::size_t d = x.cols();
  // Precompute per-component log normalizers.
  std::vector<double> log_norm(k);
  for (std::size_t c = 0; c < k; ++c) {
    double acc = std::log(weights_[c]);
    for (std::size_t f = 0; f < d; ++f) {
      acc -= 0.5 * std::log(2.0 * std::numbers::pi * variances_(c, f));
    }
    log_norm[c] = acc;
  }
  la::Matrix out(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < k; ++c) {
      double quad = 0.0;
      const auto mu = means_.row(c);
      const auto var = variances_.row(c);
      for (std::size_t f = 0; f < d; ++f) {
        const double diff = row[f] - mu[f];
        quad += diff * diff / var[f];
      }
      out(r, c) = log_norm[c] - 0.5 * quad;
    }
  }
  return out;
}

void Gmm::fit(const la::Matrix& x, std::size_t k, std::uint64_t seed,
              const GmmOptions& options) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  FSDA_CHECK_MSG(k >= 1 && k <= n, "invalid component count " << k);

  // Initialize from k-means.
  const KMeansResult init = kmeans(x, k, seed);
  weights_.assign(k, 0.0);
  means_ = init.centroids;
  variances_ = la::Matrix(k, d, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t r = 0; r < n; ++r) ++counts[init.assignment[r]];
  for (std::size_t c = 0; c < k; ++c) {
    weights_[c] = std::max(1e-8, static_cast<double>(counts[c]) /
                                     static_cast<double>(n));
  }
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t c = init.assignment[r];
    for (std::size_t f = 0; f < d; ++f) {
      const double diff = x(r, f) - means_(c, f);
      variances_(c, f) += diff * diff;
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t f = 0; f < d; ++f) {
      variances_(c, f) = std::max(
          options.variance_floor,
          variances_(c, f) / std::max<double>(1.0, static_cast<double>(
                                                       counts[c])));
    }
  }

  double previous_ll = -std::numeric_limits<double>::max();
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    iterations_ = it + 1;
    // E step.
    la::Matrix lj = log_joint(x);
    double total_ll = 0.0;
    la::Matrix resp(n, k);
    for (std::size_t r = 0; r < n; ++r) {
      const double lse = log_sum_exp(lj.row(r));
      total_ll += lse;
      for (std::size_t c = 0; c < k; ++c) {
        resp(r, c) = std::exp(lj(r, c) - lse);
      }
    }
    // M step.
    for (std::size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      for (std::size_t r = 0; r < n; ++r) nk += resp(r, c);
      nk = std::max(nk, 1e-8);
      weights_[c] = nk / static_cast<double>(n);
      for (std::size_t f = 0; f < d; ++f) {
        double mean_acc = 0.0;
        for (std::size_t r = 0; r < n; ++r) mean_acc += resp(r, c) * x(r, f);
        means_(c, f) = mean_acc / nk;
      }
      for (std::size_t f = 0; f < d; ++f) {
        double var_acc = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
          const double diff = x(r, f) - means_(c, f);
          var_acc += resp(r, c) * diff * diff;
        }
        variances_(c, f) =
            std::max(options.variance_floor, var_acc / nk);
      }
    }
    const double mean_ll = total_ll / static_cast<double>(n);
    if (mean_ll - previous_ll <
        options.tol * std::max(1.0, std::abs(previous_ll))) {
      break;
    }
    previous_ll = mean_ll;
  }
}

la::Matrix Gmm::responsibilities(const la::Matrix& x) const {
  la::Matrix lj = log_joint(x);
  for (std::size_t r = 0; r < lj.rows(); ++r) {
    const double lse = log_sum_exp(lj.row(r));
    auto row = lj.row(r);
    for (auto& v : row) v = std::exp(v - lse);
  }
  return lj;
}

std::vector<std::size_t> Gmm::assign(const la::Matrix& x) const {
  const la::Matrix lj = log_joint(x);
  std::vector<std::size_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = lj.row(r);
    out[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

double Gmm::mean_log_likelihood(const la::Matrix& x) const {
  const la::Matrix lj = log_joint(x);
  double total = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    total += log_sum_exp(lj.row(r));
  }
  return total / static_cast<double>(x.rows());
}

double Gmm::bic(const la::Matrix& x) const {
  const std::size_t k = num_components();
  const std::size_t d = means_.cols();
  // Parameters: (k-1) weights + k*d means + k*d variances.
  const double params = static_cast<double>(k - 1 + 2 * k * d);
  const double n = static_cast<double>(x.rows());
  return params * std::log(n) -
         2.0 * mean_log_likelihood(x) * n;
}

}  // namespace fsda::gmm
