#include "gmm/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"
#include "gmm/kmeans.hpp"
#include "la/kernels.hpp"

namespace fsda::gmm {

namespace {
/// log-sum-exp over a row span, NaN/Inf-safe: non-finite entries are
/// skipped (-inf is a legitimate "zero density here" statement, and NaN
/// must not poison the whole row), and a row with no finite entry returns
/// -inf -- never NaN -- so callers get a well-defined log-density for
/// points infinitely far from every component.
double log_sum_exp(std::span<const double> values) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (std::isfinite(v) && v > mx) mx = v;
  }
  if (!std::isfinite(mx)) return -std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (double v : values) {
    if (std::isfinite(v)) acc += std::exp(v - mx);
  }
  return mx + std::log(acc);
}
}  // namespace

la::Matrix Gmm::log_joint(const la::Matrix& x) const {
  la::Matrix out;
  log_joint_into(x, out);
  return out;
}

void Gmm::log_joint_into(const la::Matrix& x, la::Matrix& out) const {
  FSDA_CHECK_MSG(num_components() > 0, "log_joint before fit");
  FSDA_CHECK(x.cols() == means_.cols());
  const std::size_t n = x.rows();
  const std::size_t k = num_components();
  const std::size_t d = x.cols();
  // Expand the diagonal quadratic (x-mu)^2/var = x^2/var - 2*x*mu/var +
  // mu^2/var so the per-sample work becomes two blocked matrix products.
  inv_var_.resize(k, d);
  scaled_mu_.resize(k, d);
  std::vector<double> offset(k);  // log normalizer minus 0.5 * mu^2/var
  for (std::size_t c = 0; c < k; ++c) {
    double acc = std::log(weights_[c]);
    const double* mu = means_.row(c).data();
    const double* var = variances_.row(c).data();
    double* iv = inv_var_.row(c).data();
    double* sm = scaled_mu_.row(c).data();
    for (std::size_t f = 0; f < d; ++f) {
      acc -= 0.5 * std::log(2.0 * std::numbers::pi * var[f]);
      iv[f] = 1.0 / var[f];
      sm[f] = mu[f] / var[f];
      acc -= 0.5 * mu[f] * mu[f] / var[f];
    }
    offset[c] = acc;
  }
  xsq_.resize(n, d);
  la::hadamard_into(x, x, xsq_);
  quad_.resize(n, k);
  la::matmul_transposed_into(xsq_, inv_var_, quad_);
  cross_.resize(n, k);
  la::matmul_transposed_into(x, scaled_mu_, cross_);
  out.resize(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    const double* q = quad_.row(r).data();
    const double* cr = cross_.row(r).data();
    double* o = out.row(r).data();
    for (std::size_t c = 0; c < k; ++c) {
      o[c] = offset[c] - 0.5 * q[c] + cr[c];
    }
  }
}

void Gmm::fit(const la::Matrix& x, std::size_t k, std::uint64_t seed,
              const GmmOptions& options) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  FSDA_CHECK_MSG(k >= 1 && k <= n, "invalid component count " << k);

  // Initialize from k-means.
  const KMeansResult init = kmeans(x, k, seed);
  weights_.assign(k, 0.0);
  means_ = init.centroids;
  variances_ = la::Matrix(k, d, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t r = 0; r < n; ++r) ++counts[init.assignment[r]];
  for (std::size_t c = 0; c < k; ++c) {
    weights_[c] = std::max(1e-8, static_cast<double>(counts[c]) /
                                     static_cast<double>(n));
  }
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t c = init.assignment[r];
    for (std::size_t f = 0; f < d; ++f) {
      const double diff = x(r, f) - means_(c, f);
      variances_(c, f) += diff * diff;
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t f = 0; f < d; ++f) {
      variances_(c, f) = std::max(
          options.variance_floor,
          variances_(c, f) / std::max<double>(1.0, static_cast<double>(
                                                       counts[c])));
    }
  }

  double previous_ll = -std::numeric_limits<double>::max();
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    iterations_ = it + 1;
    // E step.
    log_joint_into(x, lj_);
    double total_ll = 0.0;
    resp_.resize(n, k);
    for (std::size_t r = 0; r < n; ++r) {
      const double lse = log_sum_exp(lj_.row(r));
      const double* l = lj_.row(r).data();
      double* p = resp_.row(r).data();
      if (std::isfinite(lse)) {
        total_ll += lse;
        for (std::size_t c = 0; c < k; ++c) p[c] = std::exp(l[c] - lse);
      } else {
        // Zero-density row (all components at -inf): exp(l - lse) would be
        // NaN.  Uniform responsibilities keep EM well-defined; the row is
        // left out of the likelihood so convergence stays finite.
        const double u = 1.0 / static_cast<double>(k);
        for (std::size_t c = 0; c < k; ++c) p[c] = u;
      }
    }
    // M step.  Soft counts and weighted means come from the blocked
    // kernels: nk = column sums of resp, means = resp^T x / nk.
    nk_.resize(1, k);
    la::sum_rows_into(resp_, nk_);
    for (std::size_t c = 0; c < k; ++c) {
      nk_(0, c) = std::max(nk_(0, c), 1e-8);
      weights_[c] = nk_(0, c) / static_cast<double>(n);
    }
    la::transposed_matmul_into(resp_, x, means_);
    for (std::size_t c = 0; c < k; ++c) {
      double* mu = means_.row(c).data();
      for (std::size_t f = 0; f < d; ++f) mu[f] /= nk_(0, c);
    }
    // Weighted variances: accumulate row-major so x is streamed once.
    variances_.fill(0.0);
    for (std::size_t r = 0; r < n; ++r) {
      const double* xr = x.row(r).data();
      const double* p = resp_.row(r).data();
      for (std::size_t c = 0; c < k; ++c) {
        const double* mu = means_.row(c).data();
        double* var = variances_.row(c).data();
        const double w = p[c];
        for (std::size_t f = 0; f < d; ++f) {
          const double diff = xr[f] - mu[f];
          var[f] += w * diff * diff;
        }
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      double* var = variances_.row(c).data();
      for (std::size_t f = 0; f < d; ++f) {
        var[f] = std::max(options.variance_floor, var[f] / nk_(0, c));
      }
    }
    const double mean_ll = total_ll / static_cast<double>(n);
    if (mean_ll - previous_ll <
        options.tol * std::max(1.0, std::abs(previous_ll))) {
      break;
    }
    previous_ll = mean_ll;
  }
}

la::Matrix Gmm::responsibilities(const la::Matrix& x) const {
  la::Matrix lj = log_joint(x);
  for (std::size_t r = 0; r < lj.rows(); ++r) {
    const double lse = log_sum_exp(lj.row(r));
    auto row = lj.row(r);
    if (std::isfinite(lse)) {
      for (auto& v : row) v = std::exp(v - lse);
    } else {
      // Zero-density row: uniform is the only finite answer.
      const double u = 1.0 / static_cast<double>(lj.cols());
      for (auto& v : row) v = u;
    }
  }
  return lj;
}

std::vector<std::size_t> Gmm::assign(const la::Matrix& x) const {
  const la::Matrix lj = log_joint(x);
  std::vector<std::size_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = lj.row(r);
    out[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

double Gmm::mean_log_likelihood(const la::Matrix& x) const {
  const la::Matrix lj = log_joint(x);
  double total = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    total += log_sum_exp(lj.row(r));
  }
  return total / static_cast<double>(x.rows());
}

double Gmm::bic(const la::Matrix& x) const {
  const std::size_t k = num_components();
  const std::size_t d = means_.cols();
  // Parameters: (k-1) weights + k*d means + k*d variances.
  const double params = static_cast<double>(k - 1 + 2 * k * d);
  const double n = static_cast<double>(x.rows());
  return params * std::log(n) -
         2.0 * mean_log_likelihood(x) * n;
}

}  // namespace fsda::gmm
