// fsda::la -- packed-weight GEMM micro-kernels with fused epilogues.
//
// The serving hot path (reconstruct -> classify, DESIGN.md §11) multiplies
// small activation batches (1..256 rows) against fixed trained weight
// matrices thousands of times.  The training kernels in kernels.hpp keep B
// in its row-major layout and re-stream it per call; here the weights are
// re-laid out ONCE into a panel-major PackedB (contiguous k x 8 column
// slabs, zero-padded at the right edge) so the inner loop always reads
// unit-stride full-width vectors, and the bias add plus activation are
// fused into the same pass over the output -- no intermediate activation
// matrix is ever materialized.
//
// Two kernels sit behind gemm_packed():
//   - an AVX2/FMA micro-kernel (4 output rows x 8 columns per register
//     tile), selected at runtime when the CPU supports it;
//   - a portable scalar kernel whose accumulation order matches
//     matmul_into (per output element: k ascending), so its results agree
//     with the training kernel to the ULP (the compiler's FMA grouping
//     differs with loop structure, so the match is ~1e-12, not bitwise).
// The choice can be forced with set_gemm_isa() (tests exercise both).
//
// The training path (DESIGN.md §12) runs on the same engine:
//   - pack_transposed() lays out Bᵀ in the identical panel format, so the
//     backward-pass dX = dY·Wᵀ is just gemm_packed() against the transposed
//     pack -- packed once per step, reused across the step's backward calls;
//   - gemm_grad_weights() computes dW (+)= Aᵀ·dY directly from the row-major
//     activations (A changes every call, so packing it would not amortize),
//     with a scalar kernel whose per-element accumulation chain matches
//     transposed_matmul_into and an AVX2/FMA variant of the same shape.
// Both large-shape entry points split output rows (gemm_packed) or dW rows
// (gemm_grad_weights) across the thread pool above a flop threshold; row
// partitioning never splits a per-element accumulation chain, so threaded
// results are bitwise identical to serial ones.
//
// Nothing here allocates after PackedB::pack(); all routines write into
// caller-owned views.
#pragma once

#include <cstddef>
#include <vector>

#include "la/view.hpp"

namespace fsda::la {

/// Instruction-set choice for gemm_packed.  Auto resolves to Avx2 when the
/// CPU supports AVX2+FMA, Scalar otherwise.
enum class GemmIsa { Auto, Scalar, Avx2 };

/// True when this process can run the AVX2/FMA micro-kernel (compiled in
/// AND supported by the CPU).
[[nodiscard]] bool gemm_avx2_available();

/// Forces the ISA used by gemm_packed (tests and benchmarks); Auto restores
/// runtime detection.  Forcing Avx2 on a CPU without it falls back to
/// Scalar rather than faulting.
void set_gemm_isa(GemmIsa isa);

/// The ISA gemm_packed will actually run with right now.
[[nodiscard]] GemmIsa active_gemm_isa();

/// Activation fused into the epilogue of gemm_packed.  ReLU and LeakyReLU
/// run vectorized inside the micro-kernel tile; Tanh/Sigmoid/Softmax are
/// applied in a second in-place sweep over the destination (still no
/// separate activation matrix), using exactly the same scalar expressions
/// as the nn layers so plan-vs-layer outputs agree.
enum class GemmAct { None, ReLU, LeakyReLU, Tanh, Sigmoid, Softmax };

/// Fused epilogue: out = act(a * B + bias).  `bias` is nullptr or a 1 x n
/// row; `leaky_alpha` feeds LeakyReLU only.
struct GemmEpilogue {
  const double* bias = nullptr;
  GemmAct act = GemmAct::None;
  double leaky_alpha = 0.2;
};

/// Weight matrix re-laid out for the packed kernels: column panels of
/// width kPanel, each stored as a contiguous k x kPanel slab (row-major
/// within the slab), right edge zero-padded.  Pack once at plan-build
/// time; pack() reuses the existing buffer capacity on repack.
class PackedB {
 public:
  static constexpr std::size_t kPanel = 8;

  PackedB() = default;

  /// Packs `b` (k x n, any row stride).  O(k*n) copy, done once per plan.
  void pack(ConstMatrixView b);

  /// Packs bᵀ without materializing the transpose: after this call the pack
  /// represents a b.cols() x b.rows() matrix, so gemm_packed(dY, pack)
  /// computes dY·bᵀ with the forward micro-kernels.  Same O(k*n) cost and
  /// capacity reuse as pack().
  void pack_transposed(ConstMatrixView b);

  [[nodiscard]] std::size_t rows() const { return k_; }
  [[nodiscard]] std::size_t cols() const { return n_; }
  [[nodiscard]] bool empty() const { return k_ == 0 || n_ == 0; }
  [[nodiscard]] std::size_t num_panels() const {
    return (n_ + kPanel - 1) / kPanel;
  }
  /// Contiguous k x kPanel slab for panel p (covers columns
  /// [p*kPanel, min(n, (p+1)*kPanel)), padded lanes are zero).
  [[nodiscard]] const double* panel(std::size_t p) const {
    return data_.data() + p * k_ * kPanel;
  }

 private:
  std::vector<double> data_;
  std::size_t k_ = 0;
  std::size_t n_ = 0;
};

/// out = act(a * B + bias).  Shapes: (m x k) * (k x n) -> (m x n); `out`
/// may be strided (e.g. a column block of a wider assembly buffer) and
/// must not alias `a`.  Dispatches to the AVX2 or scalar micro-kernel per
/// set_gemm_isa()/runtime detection.  Allocation-free.
void gemm_packed(ConstMatrixView a, const PackedB& b, MatrixView out,
                 const GemmEpilogue& epilogue = {});

/// Weight gradient of an affine layer: dw (+)= aᵀ * dy, shapes
/// (m x k)ᵀ * (m x n) -> (k x n).  `accumulate` adds into dw (the layer
/// convention); otherwise dw is overwritten.  Dispatches per
/// set_gemm_isa()/runtime detection and splits dw rows across the thread
/// pool above a flop threshold (bitwise-stable: every dw element keeps one
/// ascending accumulation chain over the batch rows).  Allocation-free.
void gemm_grad_weights(ConstMatrixView a, ConstMatrixView dy, MatrixView dw,
                       bool accumulate);

namespace detail {
/// Scalar micro-kernel (also the reference for the AVX2 path); public in
/// detail for the property tests.  Computes out = a*B + bias with optional
/// fused ReLU/LeakyReLU; transcendental activations are handled by
/// gemm_packed.
void gemm_packed_scalar(ConstMatrixView a, const PackedB& b, MatrixView out,
                        const GemmEpilogue& epilogue);
/// AVX2/FMA micro-kernel; only callable when gemm_avx2_available().
void gemm_packed_avx2(ConstMatrixView a, const PackedB& b, MatrixView out,
                      const GemmEpilogue& epilogue);
/// Scalar weight-gradient kernel: per dw element one ascending chain over
/// the batch rows, matching transposed_matmul_into.
void gemm_grad_weights_scalar(ConstMatrixView a, ConstMatrixView dy,
                              MatrixView dw, bool accumulate);
/// AVX2/FMA weight-gradient kernel (8-wide j vectorization, same i-ascending
/// chain per element); only callable when gemm_avx2_available().
void gemm_grad_weights_avx2(ConstMatrixView a, ConstMatrixView dy,
                            MatrixView dw, bool accumulate);
/// True when the AVX2 TU was compiled with AVX2+FMA support.
[[nodiscard]] bool gemm_avx2_compiled();
}  // namespace detail

}  // namespace fsda::la
