#include "la/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"

namespace fsda::la {

namespace {

// Parallelise a matmul once it exceeds roughly a quarter-million
// multiply-adds; below that the pool fork/join overhead dominates.
constexpr std::size_t kParallelFlopThreshold = std::size_t{1} << 18;

// k-blocking keeps the active panel of B resident in cache while four
// output rows are accumulated.
constexpr std::size_t kKBlock = 64;

void check_matmul_shapes(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                         std::size_t m, std::size_t n, const char* op) {
  FSDA_CHECK_MSG(out.rows() == m && out.cols() == n,
                 op << ": destination is " << out.rows() << "x" << out.cols()
                    << ", expected " << m << "x" << n);
  FSDA_CHECK_MSG(!views_overlap(out, a) && !views_overlap(out, b),
                 op << ": destination aliases an operand");
}

// Accumulates out[r0:r1) += a[r0:r1) * b, assuming out rows are
// pre-initialised.  Four output rows per sweep so each row of B loaded from
// memory feeds four independent accumulator streams (4x less B bandwidth
// than the naive i-k-j loop), with k-blocking to keep B panels cached.
void matmul_panel(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                  std::size_t r0, std::size_t r1) {
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  std::size_t i = r0;
  // __restrict on the row pointers: the aliasing contract (checked in
  // check_matmul_shapes) guarantees out is disjoint from a and b, which the
  // compiler cannot see through the views -- without it the inner loop
  // cannot vectorise.
  for (; i + 4 <= r1; i += 4) {
    double* __restrict o0 = out.row_data(i);
    double* __restrict o1 = out.row_data(i + 1);
    double* __restrict o2 = out.row_data(i + 2);
    double* __restrict o3 = out.row_data(i + 3);
    const double* a0 = a.row_data(i);
    const double* a1 = a.row_data(i + 1);
    const double* a2 = a.row_data(i + 2);
    const double* a3 = a.row_data(i + 3);
    for (std::size_t k0 = 0; k0 < kk; k0 += kKBlock) {
      const std::size_t k1 = std::min(kk, k0 + kKBlock);
      for (std::size_t k = k0; k < k1; ++k) {
        const double* __restrict brow = b.row_data(k);
        const double c0 = a0[k];
        const double c1 = a1[k];
        const double c2 = a2[k];
        const double c3 = a3[k];
        for (std::size_t j = 0; j < n; ++j) {
          const double bv = brow[j];
          o0[j] += c0 * bv;
          o1[j] += c1 * bv;
          o2[j] += c2 * bv;
          o3[j] += c3 * bv;
        }
      }
    }
  }
  for (; i < r1; ++i) {
    double* __restrict o = out.row_data(i);
    const double* arow = a.row_data(i);
    for (std::size_t k = 0; k < kk; ++k) {
      const double c = arow[k];
      const double* __restrict brow = b.row_data(k);
      for (std::size_t j = 0; j < n; ++j) o[j] += c * brow[j];
    }
  }
}

void matmul_dispatch(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                     bool accumulate) {
  if (!accumulate) {
    for (std::size_t r = 0; r < out.rows(); ++r) {
      std::fill_n(out.row_data(r), out.cols(), 0.0);
    }
  }
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  if (flops >= kParallelFlopThreshold && a.rows() >= 8) {
    common::parallel_for_chunked(
        a.rows(), [&](std::size_t begin, std::size_t end) {
          matmul_panel(a, b, out, begin, end);
        });
  } else {
    matmul_panel(a, b, out, 0, a.rows());
  }
}

// Per-thread scratch for the transpose-then-multiply strategy of the
// transposed product kernels.  thread_local so nested/parallel callers do
// not race; the buffer's capacity is retained across calls, so steady-state
// training steps do not allocate.
Matrix& transpose_scratch() {
  thread_local Matrix scratch;
  return scratch;
}

}  // namespace

void transpose_into(ConstMatrixView a, MatrixView out) {
  FSDA_CHECK_MSG(out.rows() == a.cols() && out.cols() == a.rows(),
                 "transpose_into: destination is " << out.rows() << "x"
                                                   << out.cols());
  FSDA_CHECK_MSG(!views_overlap(out, a),
                 "transpose_into: destination aliases the source");
  // 32x32 tiles keep both the read and write streams within cache lines.
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += kTile) {
    const std::size_t r1 = std::min(a.rows(), r0 + kTile);
    for (std::size_t c0 = 0; c0 < a.cols(); c0 += kTile) {
      const std::size_t c1 = std::min(a.cols(), c0 + kTile);
      for (std::size_t r = r0; r < r1; ++r) {
        const double* in = a.row_data(r);
        for (std::size_t c = c0; c < c1; ++c) {
          out.row_data(c)[r] = in[c];
        }
      }
    }
  }
}

void matmul_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  FSDA_CHECK_MSG(a.cols() == b.rows(), "matmul_into: " << a.rows() << "x"
                                                       << a.cols() << " * "
                                                       << b.rows() << "x"
                                                       << b.cols());
  check_matmul_shapes(a, b, out, a.rows(), b.cols(), "matmul_into");
  matmul_dispatch(a, b, out, /*accumulate=*/false);
}

void transposed_matmul_into(ConstMatrixView a, ConstMatrixView b,
                            MatrixView out, bool accumulate) {
  FSDA_CHECK_MSG(a.rows() == b.rows(), "transposed_matmul_into row mismatch");
  check_matmul_shapes(a, b, out, a.cols(), b.cols(),
                      "transposed_matmul_into");
  // Materialise a^T into per-thread scratch: the copy is O(m*k) against the
  // O(m*k*n) product, and buys the blocked row-major kernel for the product.
  Matrix& scratch = transpose_scratch();
  scratch.resize(a.cols(), a.rows());
  transpose_into(a, scratch);
  matmul_dispatch(scratch, b, out, accumulate);
}

void matmul_transposed_into(ConstMatrixView a, ConstMatrixView b,
                            MatrixView out) {
  FSDA_CHECK_MSG(a.cols() == b.cols(), "matmul_transposed_into col mismatch");
  check_matmul_shapes(a, b, out, a.rows(), b.rows(), "matmul_transposed_into");
  Matrix& scratch = transpose_scratch();
  scratch.resize(b.cols(), b.rows());
  transpose_into(b, scratch);
  matmul_dispatch(a, scratch, out, /*accumulate=*/false);
}

void add_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  zip_into(a, b, out, [](double x, double y) { return x + y; });
}

void sub_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  zip_into(a, b, out, [](double x, double y) { return x - y; });
}

void hadamard_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  zip_into(a, b, out, [](double x, double y) { return x * y; });
}

void scale_into(ConstMatrixView a, double scalar, MatrixView out) {
  apply_into(a, out, [scalar](double x) { return x * scalar; });
}

void copy_into(ConstMatrixView a, MatrixView out) {
  detail::check_same_shape(a, out, "copy_into");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::copy_n(a.row_data(r), a.cols(), out.row_data(r));
  }
}

void fill(MatrixView out, double value) {
  for (std::size_t r = 0; r < out.rows(); ++r) {
    std::fill_n(out.row_data(r), out.cols(), value);
  }
}

void add_row_broadcast_into(ConstMatrixView a, ConstMatrixView row,
                            MatrixView out) {
  FSDA_CHECK_MSG(row.rows() == 1 && row.cols() == a.cols(),
                 "add_row_broadcast_into expects 1x" << a.cols() << ", got "
                                                     << row.rows() << "x"
                                                     << row.cols());
  detail::check_same_shape(a, out, "add_row_broadcast_into");
  const double* bias = row.row_data(0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* in = a.row_data(r);
    double* o = out.row_data(r);
    for (std::size_t c = 0; c < a.cols(); ++c) o[c] = in[c] + bias[c];
  }
}

void cholesky_into(ConstMatrixView a, MatrixView out, double min_pivot) {
  FSDA_CHECK_MSG(a.rows() == a.cols(),
                 "cholesky_into requires a square matrix, got "
                     << a.rows() << "x" << a.cols());
  detail::check_same_shape(a, out, "cholesky_into");
  const bool in_place = a.raw() == out.raw() && a.row_stride() == out.row_stride();
  FSDA_CHECK_MSG(in_place || !views_overlap(out, a),
                 "cholesky_into: destination partially aliases the input");
  if (!in_place) copy_into(a, out);
  const std::size_t n = out.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double* __restrict ri = out.row_data(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double* __restrict rj = out.row_data(j);
      double acc = ri[j];
      for (std::size_t k = 0; k < j; ++k) acc -= ri[k] * rj[k];
      ri[j] = acc / rj[j];
    }
    double acc = ri[i];
    for (std::size_t k = 0; k < i; ++k) acc -= ri[k] * ri[k];
    if (acc <= min_pivot) {
      throw common::NumericError("cholesky_into: matrix not positive definite");
    }
    ri[i] = std::sqrt(acc);
    for (std::size_t j = i + 1; j < n; ++j) ri[j] = 0.0;
  }
}

void solve_triangular_into(ConstMatrixView tri, MatrixView b, bool transpose) {
  const std::size_t n = tri.rows();
  FSDA_CHECK_MSG(tri.cols() == n,
                 "solve_triangular_into requires a square factor");
  FSDA_CHECK_MSG(b.rows() == n, "solve_triangular_into: rhs has "
                                    << b.rows() << " rows, factor is " << n);
  const std::size_t m = b.cols();
  if (!transpose) {
    // Forward substitution with the lower factor.
    for (std::size_t i = 0; i < n; ++i) {
      const double* __restrict li = tri.row_data(i);
      double* __restrict bi = b.row_data(i);
      for (std::size_t k = 0; k < i; ++k) {
        const double factor = li[k];
        const double* __restrict bk = b.row_data(k);
        for (std::size_t c = 0; c < m; ++c) bi[c] -= factor * bk[c];
      }
      const double inv = 1.0 / li[i];
      for (std::size_t c = 0; c < m; ++c) bi[c] *= inv;
    }
  } else {
    // Backward substitution with the transposed factor: L^T x = b reads
    // column i of L as row i of L^T, i.e. tri(k, i) for k > i.
    for (std::size_t i = n; i-- > 0;) {
      double* __restrict bi = b.row_data(i);
      for (std::size_t k = i + 1; k < n; ++k) {
        const double factor = tri(k, i);
        const double* __restrict bk = b.row_data(k);
        for (std::size_t c = 0; c < m; ++c) bi[c] -= factor * bk[c];
      }
      const double inv = 1.0 / tri(i, i);
      for (std::size_t c = 0; c < m; ++c) bi[c] *= inv;
    }
  }
}

void relu_into(ConstMatrixView a, MatrixView out) {
  apply_into(a, out, [](double x) { return x > 0.0 ? x : 0.0; });
}

void relu_backward_into(ConstMatrixView grad_out, ConstMatrixView input,
                        MatrixView grad_in) {
  zip_into(grad_out, input, grad_in,
           [](double g, double x) { return x > 0.0 ? g : 0.0; });
}

void leaky_relu_into(ConstMatrixView a, MatrixView out, double alpha) {
  apply_into(a, out, [alpha](double x) { return x > 0.0 ? x : alpha * x; });
}

void leaky_relu_backward_into(ConstMatrixView grad_out, ConstMatrixView input,
                              MatrixView grad_in, double alpha) {
  zip_into(grad_out, input, grad_in,
           [alpha](double g, double x) { return x > 0.0 ? g : alpha * g; });
}

void sum_rows_into(ConstMatrixView a, MatrixView out, bool accumulate) {
  FSDA_CHECK_MSG(out.rows() == 1 && out.cols() == a.cols(),
                 "sum_rows_into expects a 1x" << a.cols() << " destination");
  double* acc = out.row_data(0);
  if (!accumulate) std::fill_n(acc, a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* in = a.row_data(r);
    for (std::size_t c = 0; c < a.cols(); ++c) acc[c] += in[c];
  }
}

}  // namespace fsda::la
