// fsda::la -- descriptive statistics over Matrix columns.
//
// Provides the moments, covariance / correlation machinery the CI tests,
// CORAL, and the dataset generators are built on, plus the Gaussian tail
// functions used to convert Fisher-z statistics into p-values.
#pragma once

#include <span>
#include <vector>

#include "la/matrix.hpp"

namespace fsda::la {

/// Mean of a sequence.
double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> values);

/// Sample standard deviation.
double stddev(std::span<const double> values);

/// Pearson correlation of two equal-length sequences; 0 when either is
/// constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Column means of a data matrix (rows = samples) -> 1 x d.
Matrix column_means(const Matrix& x);

/// Column standard deviations -> 1 x d (n-1 denominator).
Matrix column_stddevs(const Matrix& x);

/// Sample covariance matrix (d x d) of row-sample data.
Matrix covariance(const Matrix& x);

/// Covariance with ridge shrinkage: (1-w)*S + w*diag(S) + eps*I.
/// Used where few-shot sample counts make plain covariance singular.
Matrix covariance_shrunk(const Matrix& x, double shrinkage, double eps = 1e-6);

/// Correlation matrix (d x d); constant columns yield zero off-diagonals.
Matrix correlation(const Matrix& x);

/// Partial correlation of columns i and j given columns `given`, computed
/// from the inverse of the correlation submatrix.  `corr` must be a full
/// correlation matrix of the data.
double partial_correlation(const Matrix& corr, std::size_t i, std::size_t j,
                           std::span<const std::size_t> given);

/// Reusable buffers for partial_correlation_fast.  The arena grows to the
/// largest conditioning set it has seen and is then reused, so a steady
/// stream of CI tests performs zero heap allocations.  One scratch per
/// thread: typically a function-local thread_local at the call site, or one
/// instance per worker in an explicitly sharded loop.
struct PartialCorrScratch {
  std::vector<double> chol;  ///< L x L conditioning block, factored in place
  std::vector<double> yi;    ///< forward-solve of corr(S, i)
  std::vector<double> yj;    ///< forward-solve of corr(S, j)

  void ensure(std::size_t size) {
    if (chol.size() < size * size) chol.resize(size * size);
    if (yi.size() < size) {
      yi.resize(size);
      yj.resize(size);
    }
  }
};

/// Allocation-free partial correlation, numerically equivalent to
/// partial_correlation: instead of inverting the (L+2)x(L+2) submatrix over
/// {i, j} ∪ S against the identity, it forms the 2x2 Schur complement
/// M = B - C^T D^{-1} C of the (identically ridged) submatrix and reads
/// r = M01 / sqrt(M00 * M11) directly.  L ∈ {1, 2} use closed-form scalar /
/// 2x2 elimination; L >= 3 runs one Cholesky factorization of the
/// conditioning block D plus two forward triangular solves (O(L^3/3) versus
/// the full inverse's O((L+2)^3)), writing only into `scratch`.  When the
/// conditioning block is too close to singular for the factorization to be
/// trustworthy, it falls back to partial_correlation itself (including that
/// path's ridge retry), so results match the slow path bit-for-bit there.
double partial_correlation_fast(const Matrix& corr, std::size_t i,
                                std::size_t j,
                                std::span<const std::size_t> given,
                                PartialCorrScratch& scratch);

/// Standard normal CDF.
double normal_cdf(double z);

/// Two-sided p-value for a standard normal statistic.
double two_sided_p(double z);

/// Kolmogorov-Smirnov two-sample statistic (used by the ICD baseline).
double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Asymptotic p-value of the two-sample KS statistic.
double ks_p_value(double statistic, std::size_t n_a, std::size_t n_b);

/// Welch's t statistic for difference of means.
double welch_t(std::span<const double> a, std::span<const double> b);

/// Quantile (0..1) of a sequence via linear interpolation on sorted copy.
double quantile(std::span<const double> values, double q);

}  // namespace fsda::la
