// fsda::la -- descriptive statistics over Matrix columns.
//
// Provides the moments, covariance / correlation machinery the CI tests,
// CORAL, and the dataset generators are built on, plus the Gaussian tail
// functions used to convert Fisher-z statistics into p-values.
#pragma once

#include <span>
#include <vector>

#include "la/matrix.hpp"

namespace fsda::la {

/// Mean of a sequence.
double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> values);

/// Sample standard deviation.
double stddev(std::span<const double> values);

/// Pearson correlation of two equal-length sequences; 0 when either is
/// constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Column means of a data matrix (rows = samples) -> 1 x d.
Matrix column_means(const Matrix& x);

/// Column standard deviations -> 1 x d (n-1 denominator).
Matrix column_stddevs(const Matrix& x);

/// Sample covariance matrix (d x d) of row-sample data.
Matrix covariance(const Matrix& x);

/// Covariance with ridge shrinkage: (1-w)*S + w*diag(S) + eps*I.
/// Used where few-shot sample counts make plain covariance singular.
Matrix covariance_shrunk(const Matrix& x, double shrinkage, double eps = 1e-6);

/// Correlation matrix (d x d); constant columns yield zero off-diagonals.
Matrix correlation(const Matrix& x);

/// Sufficient statistics (total weight W, weighted column sums Σwx, and the
/// weighted Gram matrix Σw·xxᵀ) of a stream of d-dimensional rows, from
/// which covariance and correlation matrices are assembled in O(d²) without
/// revisiting any row.  Supports rank-1 updates (`add`), downdates
/// (`remove`, for ring-buffer eviction) and fractional row weights (exact
/// label-shift correction replaces integer row replication), so an
/// adaptation buffer can maintain per-class statistics incrementally as
/// samples arrive and a re-adaptation pays only the assembly cost.
///
/// The Gram matrix is stored as a packed upper triangle (d(d+1)/2 doubles);
/// one add/remove costs d(d+1)/2 fused multiply-adds.
///
/// Numerics: centering Σw·xxᵀ − (Σwx)(Σwx)ᵀ/W in raw moments loses digits
/// when |mean| ≫ stddev; on the [-1, 1]-scaled data these statistics exist
/// for, the relative error stays near machine epsilon (the property suite
/// pins incremental-vs-batch parity at 1e-12).  correlation_into() guards
/// the centering with a RELATIVE variance floor (see kGramVarFloor): a
/// column whose centered variance is dominated by accumulation roundoff is
/// treated as constant (zero off-diagonals), matching la::correlation's
/// exact-zero guard on constant columns without inheriting its sensitivity
/// to the sign of the roundoff.
class GramStats {
 public:
  /// Centered variances below kGramVarFloor × the raw second moment are
  /// clamped to "constant column" in correlation_into.
  static constexpr double kGramVarFloor = 1e-12;

  GramStats() = default;
  explicit GramStats(std::size_t dim) { reset(dim); }

  /// Zeroes every accumulator and fixes the dimension.
  void reset(std::size_t dim);

  /// Rank-1 update with `row` (length dim()) at `weight`.
  void add(std::span<const double> row, double weight = 1.0);
  /// Rank-1 downdate: exact inverse of add() in exact arithmetic; in
  /// floating point the residual error is bounded by the magnitude of the
  /// statistics ever accumulated (eviction-parity test: 1e-10).
  void remove(std::span<const double> row, double weight = 1.0);
  /// Folds every row of `x` in at `weight` (batch build / tests).
  void add_rows(const Matrix& x, double weight = 1.0);
  /// Accumulates `scale` × other's statistics (same dim).  This is how
  /// per-class statistics combine into a label-shift-corrected total:
  /// total += (want_c / m_c) · class_stats_c.
  void add_scaled(const GramStats& other, double scale);

  /// Statistics of the row-stacked [source; target] data with a trailing
  /// 0/1 domain-indicator column (the F-node): the indicator's cross
  /// moments with column j reduce to the target's column sums and its own
  /// moments to the target weight, so the (d+1)-dimensional combined
  /// statistics assemble in O(d²) without materializing a single row.
  static GramStats with_indicator(const GramStats& source,
                                  const GramStats& target);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  /// Total accumulated weight (the effective sample count).
  [[nodiscard]] double weight() const { return weight_; }

  /// Covariance via the (W−1)-denominator convention of la::covariance.
  void covariance_into(Matrix& out) const;
  /// Correlation with the guarded centering described above; parity with
  /// la::correlation on the same rows is ≤1e-12 for scaled data.
  void correlation_into(Matrix& out) const;
  [[nodiscard]] Matrix correlation() const;

 private:
  std::size_t dim_ = 0;
  double weight_ = 0.0;
  std::vector<double> sums_;  ///< Σ w·x, length d
  std::vector<double> gram_;  ///< Σ w·xxᵀ, packed upper triangle
};

/// Partial correlation of columns i and j given columns `given`, computed
/// from the inverse of the correlation submatrix.  `corr` must be a full
/// correlation matrix of the data.
double partial_correlation(const Matrix& corr, std::size_t i, std::size_t j,
                           std::span<const std::size_t> given);

/// Reusable buffers for partial_correlation_fast.  The arena grows to the
/// largest conditioning set it has seen and is then reused, so a steady
/// stream of CI tests performs zero heap allocations.  One scratch per
/// thread: typically a function-local thread_local at the call site, or one
/// instance per worker in an explicitly sharded loop.
struct PartialCorrScratch {
  std::vector<double> chol;  ///< L x L conditioning block, factored in place
  std::vector<double> yi;    ///< forward-solve of corr(S, i)
  std::vector<double> yj;    ///< forward-solve of corr(S, j)

  void ensure(std::size_t size) {
    if (chol.size() < size * size) chol.resize(size * size);
    if (yi.size() < size) {
      yi.resize(size);
      yj.resize(size);
    }
  }
};

/// Allocation-free partial correlation, numerically equivalent to
/// partial_correlation: instead of inverting the (L+2)x(L+2) submatrix over
/// {i, j} ∪ S against the identity, it forms the 2x2 Schur complement
/// M = B - C^T D^{-1} C of the (identically ridged) submatrix and reads
/// r = M01 / sqrt(M00 * M11) directly.  L ∈ {1, 2} use closed-form scalar /
/// 2x2 elimination; L >= 3 runs one Cholesky factorization of the
/// conditioning block D plus two forward triangular solves (O(L^3/3) versus
/// the full inverse's O((L+2)^3)), writing only into `scratch`.  When the
/// conditioning block is too close to singular for the factorization to be
/// trustworthy, it falls back to partial_correlation itself (including that
/// path's ridge retry), so results match the slow path bit-for-bit there.
double partial_correlation_fast(const Matrix& corr, std::size_t i,
                                std::size_t j,
                                std::span<const std::size_t> given,
                                PartialCorrScratch& scratch);

/// Standard normal CDF.
double normal_cdf(double z);

/// Two-sided p-value for a standard normal statistic.
double two_sided_p(double z);

/// Kolmogorov-Smirnov two-sample statistic (used by the ICD baseline).
double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Asymptotic p-value of the two-sample KS statistic.
double ks_p_value(double statistic, std::size_t n_a, std::size_t n_b);

/// Welch's t statistic for difference of means.
double welch_t(std::span<const double> a, std::span<const double> b);

/// Quantile (0..1) of a sequence via linear interpolation on sorted copy.
double quantile(std::span<const double> values, double q);

}  // namespace fsda::la
