#include "la/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "la/kernels.hpp"
#include "la/view.hpp"

namespace fsda::la {

using common::ShapeError;

namespace {

void check_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    std::ostringstream os;
    os << op << ": shape mismatch (" << a.rows() << "x" << a.cols() << ") vs ("
       << b.rows() << "x" << b.cols() << ")";
    throw ShapeError(os.str());
  }
}

std::atomic<std::size_t> g_matrix_allocations{0};

void note_alloc() {
  g_matrix_allocations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::size_t matrix_allocations() {
  return g_matrix_allocations.load(std::memory_order_relaxed);
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (!data_.empty()) note_alloc();
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = values.size();
  cols_ = rows_ == 0 ? 0 : values.begin()->size();
  if (rows_ * cols_ > 0) note_alloc();
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    FSDA_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  if (!data_.empty()) note_alloc();
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  // assign() reuses existing capacity, unlike vector copy-assignment which
  // is free to reallocate; only genuine growth counts as an allocation.
  if (other.data_.size() > data_.capacity()) note_alloc();
  data_.assign(other.data_.begin(), other.data_.end());
  return *this;
}

void Matrix::grow_storage(std::size_t n) {
  if (n > data_.capacity()) note_alloc();
  data_.resize(n);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  grow_storage(rows * cols);
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::from_vector(std::size_t rows, std::size_t cols,
                           std::vector<double> data) {
  FSDA_CHECK_MSG(data.size() == rows * cols,
                 "from_vector: " << data.size() << " values for " << rows
                                 << "x" << cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::uninit(std::size_t rows, std::size_t cols) {
  Matrix m;
  m.resize(rows, cols);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                     double stddev) {
  Matrix m = uninit(rows, cols);
  for (auto& x : m.data_) x = rng.normal(0.0, stddev);
  return m;
}

Matrix Matrix::rand_uniform(std::size_t rows, std::size_t cols,
                            common::Rng& rng, double lo, double hi) {
  Matrix m = uninit(rows, cols);
  for (auto& x : m.data_) x = rng.uniform(lo, hi);
  return m;
}

std::span<double> Matrix::row(std::size_t r) {
  FSDA_CHECK_MSG(r < rows_, "row " << r << " out of " << rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  FSDA_CHECK_MSG(r < rows_, "row " << r << " out of " << rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::row_vector(std::size_t r) const {
  auto view = row(r);
  return {view.begin(), view.end()};
}

std::vector<double> Matrix::col_vector(std::size_t c) const {
  FSDA_CHECK_MSG(c < cols_, "col " << c << " out of " << cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  FSDA_CHECK_MSG(values.size() == cols_, "set_row width mismatch");
  std::copy(values.begin(), values.end(), row(r).begin());
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  FSDA_CHECK_MSG(c < cols_, "col " << c << " out of " << cols_);
  FSDA_CHECK_MSG(values.size() == rows_, "set_col height mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::transposed() const {
  Matrix out = uninit(cols_, rows_);
  transpose_into(*this, out);
  return out;
}

Matrix Matrix::matmul(const Matrix& other) const {
  FSDA_CHECK_MSG(cols_ == other.rows_, "matmul: " << rows_ << "x" << cols_
                                                  << " * " << other.rows_
                                                  << "x" << other.cols_);
  Matrix out = uninit(rows_, other.cols_);
  matmul_into(*this, other, out);
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  FSDA_CHECK_MSG(rows_ == other.rows_, "transposed_matmul row mismatch");
  Matrix out = uninit(cols_, other.cols_);
  transposed_matmul_into(*this, other, out);
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  FSDA_CHECK_MSG(cols_ == other.cols_, "matmul_transposed col mismatch");
  Matrix out = uninit(rows_, other.rows_);
  matmul_transposed_into(*this, other, out);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  check_same_shape(*this, other, "operator+=");
  add_into(*this, other, *this);
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check_same_shape(*this, other, "operator-=");
  sub_into(*this, other, *this);
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  check_same_shape(*this, other, "hadamard");
  Matrix out = uninit(rows_, cols_);
  hadamard_into(*this, other, out);
  return out;
}

void Matrix::apply(const std::function<double(double)>& f) {
  for (auto& x : data_) x = f(x);
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
  Matrix out = *this;
  out.apply(f);
  return out;
}

void Matrix::add_row_broadcast(const Matrix& row_vector) {
  FSDA_CHECK_MSG(row_vector.rows_ == 1 && row_vector.cols_ == cols_,
                 "add_row_broadcast expects 1x" << cols_ << ", got "
                                                << row_vector.rows_ << "x"
                                                << row_vector.cols_);
  add_row_broadcast_into(*this, row_vector, *this);
}

Matrix Matrix::sum_rows() const {
  // sum_rows_into zero-initialises the destination when not accumulating.
  Matrix out = uninit(1, cols_);
  sum_rows_into(*this, out);
  return out;
}

Matrix Matrix::mean_rows() const {
  FSDA_CHECK_MSG(rows_ > 0, "mean_rows on empty matrix");
  Matrix out = sum_rows();
  out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out;
  select_rows_into(*this, indices, out);
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> indices) const {
  Matrix out = uninit(rows_, indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FSDA_CHECK_MSG(indices[i] < cols_,
                   "select_cols index " << indices[i] << " out of " << cols_);
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* in_row = data_.data() + r * cols_;
    double* out_row = out.data_.data() + r * indices.size();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      out_row[i] = in_row[indices[i]];
    }
  }
  return out;
}

Matrix Matrix::hcat(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  Matrix out;
  hcat_into(*this, other, out);
  return out;
}

Matrix Matrix::vcat(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  Matrix out;
  vcat_into(*this, other, out);
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

bool Matrix::all_finite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double x) { return std::isfinite(x); });
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed;
  os << "Matrix " << rows_ << "x" << cols_ << "\n";
  const std::size_t max_rows = std::min<std::size_t>(rows_, 8);
  const std::size_t max_cols = std::min<std::size_t>(cols_, 8);
  for (std::size_t r = 0; r < max_rows; ++r) {
    os << "  [";
    for (std::size_t c = 0; c < max_cols; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    if (max_cols < cols_) os << ", ...";
    os << "]\n";
  }
  if (max_rows < rows_) os << "  ...\n";
  return os.str();
}

Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

void select_rows_into(const Matrix& src, std::span<const std::size_t> indices,
                      Matrix& out) {
  out.resize(indices.size(), src.cols());
  const double* in = src.data().data();
  double* o = out.data().data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FSDA_CHECK_MSG(indices[i] < src.rows(), "select_rows index "
                                                << indices[i] << " out of "
                                                << src.rows());
    std::copy_n(in + indices[i] * src.cols(), src.cols(), o + i * src.cols());
  }
}

void hcat_into(const Matrix& a, const Matrix& b, Matrix& out) {
  FSDA_CHECK_MSG(a.rows() == b.rows(),
                 "hcat row mismatch: " << a.rows() << " vs " << b.rows());
  out.resize(a.rows(), a.cols() + b.cols());
  MatrixView ov(out);
  copy_into(a, ov.col_block(0, a.cols()));
  copy_into(b, ov.col_block(a.cols(), b.cols()));
}

void vcat_into(const Matrix& a, const Matrix& b, Matrix& out) {
  FSDA_CHECK_MSG(a.cols() == b.cols(),
                 "vcat col mismatch: " << a.cols() << " vs " << b.cols());
  out.resize(a.rows() + b.rows(), a.cols());
  MatrixView ov(out);
  copy_into(a, ov.row_block(0, a.rows()));
  copy_into(b, ov.row_block(a.rows(), b.rows()));
}

}  // namespace fsda::la
