#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace fsda::la {

using common::ShapeError;

namespace {
void check_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    std::ostringstream os;
    os << op << ": shape mismatch (" << a.rows() << "x" << a.cols() << ") vs ("
       << b.rows() << "x" << b.cols() << ")";
    throw ShapeError(os.str());
  }
}
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = values.size();
  cols_ = rows_ == 0 ? 0 : values.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    FSDA_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::from_vector(std::size_t rows, std::size_t cols,
                           std::vector<double> data) {
  FSDA_CHECK_MSG(data.size() == rows * cols,
                 "from_vector: " << data.size() << " values for " << rows
                                 << "x" << cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.normal(0.0, stddev);
  return m;
}

Matrix Matrix::rand_uniform(std::size_t rows, std::size_t cols,
                            common::Rng& rng, double lo, double hi) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.uniform(lo, hi);
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  FSDA_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                   << ") out of " << rows_
                                                   << "x" << cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  FSDA_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                   << ") out of " << rows_
                                                   << "x" << cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  FSDA_CHECK_MSG(r < rows_, "row " << r << " out of " << rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  FSDA_CHECK_MSG(r < rows_, "row " << r << " out of " << rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::row_vector(std::size_t r) const {
  auto view = row(r);
  return {view.begin(), view.end()};
}

std::vector<double> Matrix::col_vector(std::size_t c) const {
  FSDA_CHECK_MSG(c < cols_, "col " << c << " out of " << cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  FSDA_CHECK_MSG(values.size() == cols_, "set_row width mismatch");
  std::copy(values.begin(), values.end(), row(r).begin());
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  FSDA_CHECK_MSG(c < cols_, "col " << c << " out of " << cols_);
  FSDA_CHECK_MSG(values.size() == rows_, "set_col height mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return out;
}

Matrix Matrix::matmul(const Matrix& other) const {
  FSDA_CHECK_MSG(cols_ == other.rows_, "matmul: " << rows_ << "x" << cols_
                                                  << " * " << other.rows_
                                                  << "x" << other.cols_);
  Matrix out(rows_, other.cols_, 0.0);
  // i-k-j loop order: streams through both operands row-major.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = data_.data() + i * cols_;
    double* o_row = out.data_.data() + i * other.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.data_.data() + k * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  FSDA_CHECK_MSG(rows_ == other.rows_, "transposed_matmul row mismatch");
  Matrix out(cols_, other.cols_, 0.0);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* a_row = data_.data() + k * cols_;
    const double* b_row = other.data_.data() + k * other.cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = a_row[i];
      if (a == 0.0) continue;
      double* o_row = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  FSDA_CHECK_MSG(cols_ == other.cols_, "matmul_transposed col mismatch");
  Matrix out(rows_, other.rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = data_.data() + i * cols_;
    double* o_row = out.data_.data() + i * other.rows_;
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* b_row = other.data_.data() + j * other.cols_;
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
      o_row[j] = acc;
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  check_same_shape(*this, other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check_same_shape(*this, other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  check_same_shape(*this, other, "hadamard");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] *= other.data_[i];
  }
  return out;
}

void Matrix::apply(const std::function<double(double)>& f) {
  for (auto& x : data_) x = f(x);
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
  Matrix out = *this;
  out.apply(f);
  return out;
}

void Matrix::add_row_broadcast(const Matrix& row_vector) {
  FSDA_CHECK_MSG(row_vector.rows_ == 1 && row_vector.cols_ == cols_,
                 "add_row_broadcast expects 1x" << cols_ << ", got "
                                                << row_vector.rows_ << "x"
                                                << row_vector.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* out_row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out_row[c] += row_vector.data_[c];
  }
}

Matrix Matrix::sum_rows() const {
  Matrix out(1, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* in_row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c] += in_row[c];
  }
  return out;
}

Matrix Matrix::mean_rows() const {
  FSDA_CHECK_MSG(rows_ > 0, "mean_rows on empty matrix");
  Matrix out = sum_rows();
  out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FSDA_CHECK_MSG(indices[i] < rows_,
                   "select_rows index " << indices[i] << " out of " << rows_);
    std::copy_n(data_.data() + indices[i] * cols_, cols_,
                out.data_.data() + i * cols_);
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FSDA_CHECK_MSG(indices[i] < cols_,
                   "select_cols index " << indices[i] << " out of " << cols_);
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* in_row = data_.data() + r * cols_;
    double* out_row = out.data_.data() + r * indices.size();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      out_row[i] = in_row[indices[i]];
    }
  }
  return out;
}

Matrix Matrix::hcat(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  FSDA_CHECK_MSG(rows_ == other.rows_, "hcat row mismatch: " << rows_ << " vs "
                                                             << other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data_.data() + r * cols_, cols_,
                out.data_.data() + r * out.cols_);
    std::copy_n(other.data_.data() + r * other.cols_, other.cols_,
                out.data_.data() + r * out.cols_ + cols_);
  }
  return out;
}

Matrix Matrix::vcat(const Matrix& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  FSDA_CHECK_MSG(cols_ == other.cols_, "vcat col mismatch: " << cols_ << " vs "
                                                             << other.cols_);
  Matrix out(rows_ + other.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  std::copy(other.data_.begin(), other.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(data_.size()));
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

bool Matrix::all_finite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double x) { return std::isfinite(x); });
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed;
  os << "Matrix " << rows_ << "x" << cols_ << "\n";
  const std::size_t max_rows = std::min<std::size_t>(rows_, 8);
  const std::size_t max_cols = std::min<std::size_t>(cols_, 8);
  for (std::size_t r = 0; r < max_rows; ++r) {
    os << "  [";
    for (std::size_t c = 0; c < max_cols; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    if (max_cols < cols_) os << ", ...";
    os << "]\n";
  }
  if (max_rows < rows_) os << "  ...\n";
  return os.str();
}

Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

}  // namespace fsda::la
