// fsda::la -- non-owning matrix views.
//
// MatrixView / ConstMatrixView address a rectangular window of row-major
// storage as (pointer, rows, cols, row_stride) without copying.  Rows,
// contiguous column blocks, and mini-batches of a Matrix can therefore be
// handed to the destination-passing kernels in kernels.hpp with zero
// allocation, replacing the select_rows/select_cols copies on hot paths.
//
// Views never own storage: the viewed Matrix (or buffer) must outlive the
// view, and growing/destroying the underlying Matrix invalidates it.
#pragma once

#include <cstddef>
#include <span>

#include "common/error.hpp"
#include "la/matrix.hpp"

namespace fsda::la {

/// Read-only view of a row-major block: element (r, c) lives at
/// data[r * row_stride + c].
class ConstMatrixView {
 public:
  constexpr ConstMatrixView() = default;

  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t row_stride)
      : data_(data), rows_(rows), cols_(cols), row_stride_(row_stride) {
    FSDA_CHECK_MSG(row_stride >= cols,
                   "view row_stride " << row_stride << " < cols " << cols);
  }

  /// Whole-matrix view (implicit so Matrix can feed kernels directly).
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data().data()),
        rows_(m.rows()),
        cols_(m.cols()),
        row_stride_(m.cols()) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t row_stride() const { return row_stride_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] bool contiguous() const { return row_stride_ == cols_; }

  [[nodiscard]] const double* row_data(std::size_t r) const {
    return data_ + r * row_stride_;
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    FSDA_CHECK_MSG(r < rows_, "view row " << r << " out of " << rows_);
    return {row_data(r), cols_};
  }
  double operator()(std::size_t r, std::size_t c) const {
    FSDA_CHECK_MSG(r < rows_ && c < cols_, "view index (" << r << "," << c
                                                          << ") out of "
                                                          << rows_ << "x"
                                                          << cols_);
    return data_[r * row_stride_ + c];
  }

  /// View of `count` consecutive rows starting at `begin`.
  [[nodiscard]] ConstMatrixView row_block(std::size_t begin,
                                          std::size_t count) const {
    FSDA_CHECK_MSG(begin + count <= rows_, "row_block out of range");
    return {data_ + begin * row_stride_, count, cols_, row_stride_};
  }

  /// View of `count` consecutive columns starting at `begin` (strided).
  [[nodiscard]] ConstMatrixView col_block(std::size_t begin,
                                          std::size_t count) const {
    FSDA_CHECK_MSG(begin + count <= cols_, "col_block out of range");
    return {data_ + begin, rows_, count, row_stride_};
  }

  /// First element pointer (for overlap tests).
  [[nodiscard]] const double* raw() const { return data_; }
  /// One-past the last addressable element.
  [[nodiscard]] const double* raw_end() const {
    if (empty()) return data_;
    return data_ + (rows_ - 1) * row_stride_ + cols_;
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_stride_ = 0;
};

/// Mutable view with the same addressing scheme.
class MatrixView {
 public:
  constexpr MatrixView() = default;

  MatrixView(double* data, std::size_t rows, std::size_t cols,
             std::size_t row_stride)
      : data_(data), rows_(rows), cols_(cols), row_stride_(row_stride) {
    FSDA_CHECK_MSG(row_stride >= cols,
                   "view row_stride " << row_stride << " < cols " << cols);
  }

  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data().data()),
        rows_(m.rows()),
        cols_(m.cols()),
        row_stride_(m.cols()) {}

  operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
    return {data_, rows_, cols_, row_stride_};
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t row_stride() const { return row_stride_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] bool contiguous() const { return row_stride_ == cols_; }

  [[nodiscard]] double* row_data(std::size_t r) const {
    return data_ + r * row_stride_;
  }
  [[nodiscard]] std::span<double> row(std::size_t r) const {
    FSDA_CHECK_MSG(r < rows_, "view row " << r << " out of " << rows_);
    return {row_data(r), cols_};
  }
  double& operator()(std::size_t r, std::size_t c) const {
    FSDA_CHECK_MSG(r < rows_ && c < cols_, "view index (" << r << "," << c
                                                          << ") out of "
                                                          << rows_ << "x"
                                                          << cols_);
    return data_[r * row_stride_ + c];
  }

  [[nodiscard]] MatrixView row_block(std::size_t begin,
                                     std::size_t count) const {
    FSDA_CHECK_MSG(begin + count <= rows_, "row_block out of range");
    return {data_ + begin * row_stride_, count, cols_, row_stride_};
  }

  [[nodiscard]] MatrixView col_block(std::size_t begin,
                                     std::size_t count) const {
    FSDA_CHECK_MSG(begin + count <= cols_, "col_block out of range");
    return {data_ + begin, rows_, count, row_stride_};
  }

  [[nodiscard]] double* raw() const { return data_; }
  [[nodiscard]] const double* raw_end() const {
    if (empty()) return data_;
    return data_ + (rows_ - 1) * row_stride_ + cols_;
  }

 private:
  double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_stride_ = 0;
};

/// True when the address ranges of two views can touch the same memory.
inline bool views_overlap(ConstMatrixView a, ConstMatrixView b) {
  if (a.empty() || b.empty()) return false;
  return a.raw() < b.raw_end() && b.raw() < a.raw_end();
}

}  // namespace fsda::la
