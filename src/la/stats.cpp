#include "la/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "la/kernels.hpp"
#include "la/linalg.hpp"
#include "la/view.hpp"

namespace fsda::la {

double mean(std::span<const double> values) {
  FSDA_CHECK_MSG(!values.empty(), "mean of empty sequence");
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double pearson(std::span<const double> x, std::span<const double> y) {
  FSDA_CHECK_MSG(x.size() == y.size(), "pearson length mismatch");
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Matrix column_means(const Matrix& x) { return x.mean_rows(); }

Matrix column_stddevs(const Matrix& x) {
  FSDA_CHECK_MSG(x.rows() > 0, "column_stddevs on empty matrix");
  const Matrix m = x.mean_rows();
  Matrix out(1, x.cols(), 0.0);
  if (x.rows() < 2) return out;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = x(r, c) - m(0, c);
      out(0, c) += d * d;
    }
  }
  for (std::size_t c = 0; c < x.cols(); ++c) {
    out(0, c) = std::sqrt(out(0, c) / static_cast<double>(x.rows() - 1));
  }
  return out;
}

Matrix covariance(const Matrix& x) {
  FSDA_CHECK_MSG(x.rows() >= 2, "covariance needs >= 2 samples");
  const Matrix m = x.mean_rows();
  Matrix centered = x;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) centered(r, c) -= m(0, c);
  }
  Matrix cov = centered.transposed_matmul(centered);
  cov *= 1.0 / static_cast<double>(x.rows() - 1);
  return cov;
}

Matrix covariance_shrunk(const Matrix& x, double shrinkage, double eps) {
  FSDA_CHECK_MSG(shrinkage >= 0.0 && shrinkage <= 1.0,
                 "shrinkage out of [0,1]: " << shrinkage);
  Matrix cov = covariance(x);
  for (std::size_t i = 0; i < cov.rows(); ++i) {
    for (std::size_t j = 0; j < cov.cols(); ++j) {
      if (i != j) cov(i, j) *= (1.0 - shrinkage);
    }
    cov(i, i) += eps;
  }
  return cov;
}

void GramStats::reset(std::size_t dim) {
  dim_ = dim;
  weight_ = 0.0;
  sums_.assign(dim, 0.0);
  gram_.assign(dim * (dim + 1) / 2, 0.0);
}

namespace {

/// Packed-upper-triangle offset of row i (i <= j indexes as base(i) + j).
inline std::size_t tri_base(std::size_t i, std::size_t d) {
  return i * d - i * (i - 1) / 2 - i;
}

}  // namespace

void GramStats::add(std::span<const double> row, double weight) {
  FSDA_CHECK_MSG(row.size() == dim_, "GramStats::add row width "
                                         << row.size() << ", expect " << dim_);
  weight_ += weight;
  double* g = gram_.data();
  for (std::size_t i = 0; i < dim_; ++i) {
    const double wi = weight * row[i];
    sums_[i] += wi;
    double* gi = g + tri_base(i, dim_);
    for (std::size_t j = i; j < dim_; ++j) gi[j] += wi * row[j];
  }
}

void GramStats::remove(std::span<const double> row, double weight) {
  FSDA_CHECK_MSG(row.size() == dim_, "GramStats::remove row width "
                                         << row.size() << ", expect " << dim_);
  weight_ -= weight;
  double* g = gram_.data();
  for (std::size_t i = 0; i < dim_; ++i) {
    const double wi = weight * row[i];
    sums_[i] -= wi;
    double* gi = g + tri_base(i, dim_);
    for (std::size_t j = i; j < dim_; ++j) gi[j] -= wi * row[j];
  }
}

void GramStats::add_rows(const Matrix& x, double weight) {
  FSDA_CHECK_MSG(x.cols() == dim_, "GramStats::add_rows width mismatch");
  const ConstMatrixView xv(x);
  for (std::size_t r = 0; r < xv.rows(); ++r) {
    add(std::span<const double>(xv.row_data(r), dim_), weight);
  }
}

void GramStats::add_scaled(const GramStats& other, double scale) {
  FSDA_CHECK_MSG(other.dim_ == dim_, "GramStats::add_scaled dim mismatch");
  weight_ += scale * other.weight_;
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    sums_[i] += scale * other.sums_[i];
  }
  for (std::size_t i = 0; i < gram_.size(); ++i) {
    gram_[i] += scale * other.gram_[i];
  }
}

GramStats GramStats::with_indicator(const GramStats& source,
                                    const GramStats& target) {
  FSDA_CHECK_MSG(source.dim_ == target.dim_,
                 "with_indicator: source/target dim mismatch");
  const std::size_t d = source.dim_;
  GramStats out(d + 1);
  out.weight_ = source.weight_ + target.weight_;
  for (std::size_t i = 0; i < d; ++i) {
    out.sums_[i] = source.sums_[i] + target.sums_[i];
  }
  out.sums_[d] = target.weight_;  // Σ F = target weight (F = 1 there)
  for (std::size_t i = 0; i < d; ++i) {
    const double* src_i = source.gram_.data() + tri_base(i, d);
    const double* tgt_i = target.gram_.data() + tri_base(i, d);
    double* out_i = out.gram_.data() + tri_base(i, d + 1);
    for (std::size_t j = i; j < d; ++j) out_i[j] = src_i[j] + tgt_i[j];
    out_i[d] = target.sums_[i];  // Σ F·x_i = target column sum
  }
  out.gram_[tri_base(d, d + 1) + d] = target.weight_;  // Σ F² = Σ F
  return out;
}

void GramStats::covariance_into(Matrix& out) const {
  FSDA_CHECK_MSG(weight_ > 1.0, "GramStats covariance needs weight > 1");
  out.resize(dim_, dim_);
  const double inv_w = 1.0 / weight_;
  const double norm = 1.0 / (weight_ - 1.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double* gi = gram_.data() + tri_base(i, dim_);
    for (std::size_t j = i; j < dim_; ++j) {
      const double c = (gi[j] - sums_[i] * sums_[j] * inv_w) * norm;
      out(i, j) = c;
      out(j, i) = c;
    }
  }
}

void GramStats::correlation_into(Matrix& out) const {
  FSDA_CHECK_MSG(weight_ > 1.0, "GramStats correlation needs weight > 1");
  out.resize(dim_, dim_);
  const double inv_w = 1.0 / weight_;
  // The (W−1) normalization cancels in the correlation ratio, so centered
  // second moments are used directly.
  std::vector<double> inv_sd(dim_, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double raw = gram_[tri_base(i, dim_) + i];
    const double centered = raw - sums_[i] * sums_[i] * inv_w;
    const double floor = kGramVarFloor * std::abs(raw);
    inv_sd[i] = centered > floor && centered > 0.0
                    ? 1.0 / std::sqrt(centered)
                    : 0.0;
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    const double* gi = gram_.data() + tri_base(i, dim_);
    out(i, i) = 1.0;
    for (std::size_t j = i + 1; j < dim_; ++j) {
      const double centered = gi[j] - sums_[i] * sums_[j] * inv_w;
      // Correlations can poke past ±1 by roundoff near collinearity; clamp
      // so the Fisher-z atanh downstream stays finite.
      const double r =
          std::clamp(centered * inv_sd[i] * inv_sd[j], -1.0, 1.0);
      out(i, j) = r;
      out(j, i) = r;
    }
  }
}

Matrix GramStats::correlation() const {
  Matrix out;
  correlation_into(out);
  return out;
}

Matrix correlation(const Matrix& x) {
  Matrix cov = covariance(x);
  const std::size_t d = cov.rows();
  std::vector<double> inv_sd(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    inv_sd[i] = cov(i, i) > 0.0 ? 1.0 / std::sqrt(cov(i, i)) : 0.0;
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      cov(i, j) = (i == j) ? 1.0 : cov(i, j) * inv_sd[i] * inv_sd[j];
    }
  }
  return cov;
}

double partial_correlation(const Matrix& corr, std::size_t i, std::size_t j,
                           std::span<const std::size_t> given) {
  FSDA_CHECK_MSG(i < corr.rows() && j < corr.rows(), "index out of range");
  FSDA_CHECK_MSG(i != j, "partial correlation of a variable with itself");
  if (given.empty()) return corr(i, j);
  // Build the submatrix over {i, j} ∪ given and invert; the partial
  // correlation is read off the precision matrix.
  std::vector<std::size_t> idx;
  idx.reserve(2 + given.size());
  idx.push_back(i);
  idx.push_back(j);
  for (std::size_t g : given) {
    FSDA_CHECK_MSG(g != i && g != j, "conditioning set overlaps {i,j}");
    idx.push_back(g);
  }
  const std::size_t k = idx.size();
  Matrix sub(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) sub(a, b) = corr(idx[a], idx[b]);
  }
  // Regularize slightly: correlation submatrices from finite samples can be
  // numerically semidefinite.
  for (std::size_t a = 0; a < k; ++a) sub(a, a) += 1e-10;
  Matrix prec;
  try {
    prec = inverse(sub);
  } catch (const common::NumericError&) {
    for (std::size_t a = 0; a < k; ++a) sub(a, a) += 1e-4;
    prec = inverse(sub);
  }
  const double denom = std::sqrt(prec(0, 0) * prec(1, 1));
  if (denom <= 0.0) return 0.0;
  double r = -prec(0, 1) / denom;
  return std::clamp(r, -1.0, 1.0);
}

namespace {

// Ridge matching the slow path's first attempt; both paths perturb the
// submatrix diagonal identically so their results agree to rounding.
constexpr double kPcorrRidge = 1e-10;

// Breakdown threshold for the fast path: a Cholesky pivot (or 2x2
// determinant) of the unit-diagonal conditioning block at or below this
// means the block is near-singular enough that the factored and
// LU-inverted computations could drift apart, so the fast path defers to
// the exact slow path instead.
constexpr double kPcorrBreakdown = 1e-8;

/// Computes the 2x2 Schur complement M = B - C^T D^{-1} C of the ridged
/// submatrix over {i, j} ∪ given, where D is the conditioning block and
/// B the {i, j} block.  Returns false when D (or the complement diagonal)
/// is too close to singular to trust the factorization.
bool pcorr_schur_block(const Matrix& corr, std::size_t i, std::size_t j,
                       std::span<const std::size_t> given,
                       PartialCorrScratch& scratch, double& m00, double& m01,
                       double& m11) {
  const double diag = 1.0 + kPcorrRidge;
  const std::size_t size = given.size();
  if (size == 1) {
    const std::size_t g = given[0];
    const double ci = corr(g, i);
    const double cj = corr(g, j);
    m00 = diag - ci * ci / diag;
    m01 = corr(i, j) - ci * cj / diag;
    m11 = diag - cj * cj / diag;
  } else if (size == 2) {
    const std::size_t g0 = given[0];
    const std::size_t g1 = given[1];
    const double d01 = corr(g0, g1);
    const double det = diag * diag - d01 * d01;
    if (det <= kPcorrBreakdown) return false;
    const double ci0 = corr(g0, i);
    const double ci1 = corr(g1, i);
    const double cj0 = corr(g0, j);
    const double cj1 = corr(g1, j);
    // D^{-1} c by Cramer's rule on the 2x2 conditioning block.
    const double ui0 = (diag * ci0 - d01 * ci1) / det;
    const double ui1 = (diag * ci1 - d01 * ci0) / det;
    const double uj0 = (diag * cj0 - d01 * cj1) / det;
    const double uj1 = (diag * cj1 - d01 * cj0) / det;
    m00 = diag - (ci0 * ui0 + ci1 * ui1);
    m01 = corr(i, j) - (ci0 * uj0 + ci1 * uj1);
    m11 = diag - (cj0 * uj0 + cj1 * uj1);
  } else {
    scratch.ensure(size);
    double* d = scratch.chol.data();
    for (std::size_t a = 0; a < size; ++a) {
      for (std::size_t b = 0; b < size; ++b) {
        d[a * size + b] = a == b ? diag : corr(given[a], given[b]);
      }
      scratch.yi[a] = corr(given[a], i);
      scratch.yj[a] = corr(given[a], j);
    }
    MatrixView d_view(d, size, size, size);
    try {
      cholesky_into(d_view, d_view, kPcorrBreakdown);
    } catch (const common::NumericError&) {
      return false;
    }
    MatrixView yi_view(scratch.yi.data(), size, 1, 1);
    MatrixView yj_view(scratch.yj.data(), size, 1, 1);
    solve_triangular_into(d_view, yi_view);
    solve_triangular_into(d_view, yj_view);
    // With D = L L^T, c_a^T D^{-1} c_b = (L^{-1} c_a) . (L^{-1} c_b).
    double sii = 0.0, sij = 0.0, sjj = 0.0;
    for (std::size_t a = 0; a < size; ++a) {
      sii += scratch.yi[a] * scratch.yi[a];
      sij += scratch.yi[a] * scratch.yj[a];
      sjj += scratch.yj[a] * scratch.yj[a];
    }
    m00 = diag - sii;
    m01 = corr(i, j) - sij;
    m11 = diag - sjj;
  }
  return m00 > kPcorrBreakdown && m11 > kPcorrBreakdown;
}

}  // namespace

double partial_correlation_fast(const Matrix& corr, std::size_t i,
                                std::size_t j,
                                std::span<const std::size_t> given,
                                PartialCorrScratch& scratch) {
  FSDA_CHECK_MSG(i < corr.rows() && j < corr.rows(), "index out of range");
  FSDA_CHECK_MSG(i != j, "partial correlation of a variable with itself");
  if (given.empty()) return corr(i, j);
  for (std::size_t g : given) {
    FSDA_CHECK_MSG(g != i && g != j, "conditioning set overlaps {i,j}");
  }
  double m00, m01, m11;
  if (!pcorr_schur_block(corr, i, j, given, scratch, m00, m01, m11)) {
    // Near-singular conditioning block: defer to the inverse-based path so
    // pathological inputs keep their exact historical behaviour (ridge
    // retry included).
    return partial_correlation(corr, i, j, given);
  }
  const double r = m01 / std::sqrt(m00 * m11);
  return std::clamp(r, -1.0, 1.0);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double two_sided_p(double z) { return 2.0 * (1.0 - normal_cdf(std::abs(z))); }

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  FSDA_CHECK_MSG(!a.empty() && !b.empty(), "KS on empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  double d = 0.0;
  std::size_t ia = 0, ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    if (sa[ia] <= sb[ib]) ++ia;
    else ++ib;
    const double fa = static_cast<double>(ia) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(sb.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double ks_p_value(double statistic, std::size_t n_a, std::size_t n_b) {
  FSDA_CHECK(n_a > 0 && n_b > 0);
  const double n = static_cast<double>(n_a) * static_cast<double>(n_b) /
                   static_cast<double>(n_a + n_b);
  const double lambda = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * statistic;
  // Kolmogorov distribution tail series.
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = 2.0 * sign * std::exp(-2.0 * k * k * lambda * lambda);
    p += term;
    if (std::abs(term) < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(p, 0.0, 1.0);
}

double welch_t(std::span<const double> a, std::span<const double> b) {
  FSDA_CHECK(a.size() >= 2 && b.size() >= 2);
  const double va = variance(a) / static_cast<double>(a.size());
  const double vb = variance(b) / static_cast<double>(b.size());
  const double denom = std::sqrt(va + vb);
  if (denom <= 0.0) return 0.0;
  return (mean(a) - mean(b)) / denom;
}

double quantile(std::span<const double> values, double q) {
  FSDA_CHECK_MSG(!values.empty(), "quantile of empty sequence");
  FSDA_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: " << q);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace fsda::la
