#include "la/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "la/kernels.hpp"
#include "la/view.hpp"

namespace fsda::la {

using common::NumericError;

namespace {
void check_square(const Matrix& a, const char* op) {
  FSDA_CHECK_MSG(a.rows() == a.cols(),
                 op << " requires a square matrix, got " << a.rows() << "x"
                    << a.cols());
}

/// LU decomposition with partial pivoting, in place on a copy.
/// Returns {LU, perm, sign}; throws NumericError when singular.
struct Lu {
  Matrix lu;
  std::vector<std::size_t> perm;
  double sign = 1.0;
};

Lu lu_decompose(const Matrix& a) {
  check_square(a, "LU");
  const std::size_t n = a.rows();
  Lu out{a, std::vector<std::size_t>(n), 1.0};
  std::iota(out.perm.begin(), out.perm.end(), std::size_t{0});
  Matrix& m = out.lu;
  for (std::size_t k = 0; k < n; ++k) {
    // pivot selection
    std::size_t pivot = k;
    double best = std::abs(m(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(m(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-300) throw NumericError("LU: matrix is singular");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m(k, c), m(pivot, c));
      std::swap(out.perm[k], out.perm[pivot]);
      out.sign = -out.sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      m(i, k) /= m(k, k);
      const double factor = m(i, k);
      for (std::size_t c = k + 1; c < n; ++c) m(i, c) -= factor * m(k, c);
    }
  }
  return out;
}
}  // namespace

Matrix cholesky(const Matrix& a) {
  check_square(a, "cholesky");
  Matrix l(a.rows(), a.rows());
  cholesky_into(a, l);
  return l;
}

Matrix cholesky_solve(const Matrix& a, const Matrix& b) {
  FSDA_CHECK_MSG(a.rows() == b.rows(), "cholesky_solve shape mismatch");
  const Matrix l = cholesky(a);
  Matrix x = b;
  MatrixView xv(x);
  solve_triangular_into(l, xv, /*transpose=*/false);  // L y = b
  solve_triangular_into(l, xv, /*transpose=*/true);   // L^T x = y
  return x;
}

Matrix lu_solve(const Matrix& a, const Matrix& b) {
  FSDA_CHECK_MSG(a.rows() == b.rows(), "lu_solve shape mismatch");
  const Lu f = lu_decompose(a);
  const std::size_t n = a.rows();
  Matrix x(n, b.cols());
  for (std::size_t col = 0; col < b.cols(); ++col) {
    // apply permutation, forward substitution (unit lower)
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b(f.perm[i], col);
      for (std::size_t k = 0; k < i; ++k) acc -= f.lu(i, k) * x(k, col);
      x(i, col) = acc;
    }
    // backward substitution (upper)
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = x(ii, col);
      for (std::size_t k = ii + 1; k < n; ++k) acc -= f.lu(ii, k) * x(k, col);
      x(ii, col) = acc / f.lu(ii, ii);
    }
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  return lu_solve(a, Matrix::identity(a.rows()));
}

double determinant(const Matrix& a) {
  check_square(a, "determinant");
  Lu f{Matrix{}, {}, 1.0};
  try {
    f = lu_decompose(a);
  } catch (const NumericError&) {
    return 0.0;  // singular matrices have zero determinant
  }
  double det = f.sign;
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

double log_det_spd(const Matrix& a) {
  const Matrix l = cholesky(a);
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

EigenResult eigen_symmetric(const Matrix& a, int max_sweeps) {
  check_square(a, "eigen_symmetric");
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    }
    if (off < 1e-22) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // rotate rows/cols p,q of d
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  EigenResult result;
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = d(i, i);
  // sort ascending, permuting eigenvector columns alongside
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return result.values[x] < result.values[y];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_values[i] = result.values[order[i]];
    for (std::size_t r = 0; r < n; ++r) {
      sorted_vectors(r, i) = v(r, order[i]);
    }
  }
  result.values = std::move(sorted_values);
  result.vectors = std::move(sorted_vectors);
  return result;
}

namespace {
Matrix spd_power(const Matrix& a, double power, double eps) {
  const EigenResult eig = eigen_symmetric(a);
  const std::size_t n = a.rows();
  Matrix scaled = eig.vectors;  // columns scaled by lambda^power
  for (std::size_t c = 0; c < n; ++c) {
    const double lambda = std::max(eig.values[c], eps);
    const double factor = std::pow(lambda, power);
    for (std::size_t r = 0; r < n; ++r) scaled(r, c) *= factor;
  }
  return scaled.matmul_transposed(eig.vectors);
}
}  // namespace

Matrix sqrt_spd(const Matrix& a, double eps) { return spd_power(a, 0.5, eps); }

Matrix inv_sqrt_spd(const Matrix& a, double eps) {
  return spd_power(a, -0.5, eps);
}

}  // namespace fsda::la
