// AVX2 fused-Adam kernel.  Compiled with -mavx2 -ffp-contract=off and NO
// -mfma (la/CMakeLists.txt): every intrinsic below is a single
// correctly-rounded IEEE-754 operation (_mm256_{mul,add,sub,div,sqrt}_pd),
// arranged in exactly the expression order of fused_adam_scalar, so the two
// kernels agree BITWISE -- unlike the GEMM micro-kernels, where FMA
// contraction limits agreement to ~1e-12.  training_engine_test pins the
// exact-trajectory property over 100 steps.
#include "la/optim_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace fsda::la::detail {

#if defined(__AVX2__)

bool fused_adam_avx2_compiled() { return true; }

void fused_adam_avx2(double* value, double* m, double* v, const double* grad,
                     std::size_t n, const AdamStepConstants& c) {
  const __m256d beta1 = _mm256_set1_pd(c.beta1);
  const __m256d beta2 = _mm256_set1_pd(c.beta2);
  const __m256d omb1 = _mm256_set1_pd(1.0 - c.beta1);
  const __m256d omb2 = _mm256_set1_pd(1.0 - c.beta2);
  const __m256d bc1 = _mm256_set1_pd(c.bias_corr1);
  const __m256d bc2 = _mm256_set1_pd(c.bias_corr2);
  const __m256d eps = _mm256_set1_pd(c.eps);
  const __m256d lr = _mm256_set1_pd(c.lr);
  const __m256d wd = _mm256_set1_pd(c.weight_decay);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d g = _mm256_loadu_pd(grad + j);
    // m = beta1*m + (1-beta1)*g
    const __m256d mj = _mm256_add_pd(_mm256_mul_pd(beta1, _mm256_loadu_pd(m + j)),
                                     _mm256_mul_pd(omb1, g));
    _mm256_storeu_pd(m + j, mj);
    // v = beta2*v + ((1-beta2)*g)*g -- same association as the scalar kernel.
    const __m256d vj = _mm256_add_pd(_mm256_mul_pd(beta2, _mm256_loadu_pd(v + j)),
                                     _mm256_mul_pd(_mm256_mul_pd(omb2, g), g));
    _mm256_storeu_pd(v + j, vj);
    const __m256d m_hat = _mm256_div_pd(mj, bc1);
    const __m256d v_hat = _mm256_div_pd(vj, bc2);
    const __m256d val = _mm256_loadu_pd(value + j);
    // value -= lr * (m_hat/(sqrt(v_hat)+eps) + weight_decay*value)
    const __m256d update = _mm256_add_pd(
        _mm256_div_pd(m_hat, _mm256_add_pd(_mm256_sqrt_pd(v_hat), eps)),
        _mm256_mul_pd(wd, val));
    _mm256_storeu_pd(value + j, _mm256_sub_pd(val, _mm256_mul_pd(lr, update)));
  }
  if (j < n) {
    fused_adam_scalar(value + j, m + j, v + j, grad + j, n - j, c);
  }
}

#else  // !__AVX2__

bool fused_adam_avx2_compiled() { return false; }

void fused_adam_avx2(double* value, double* m, double* v, const double* grad,
                     std::size_t n, const AdamStepConstants& c) {
  // Unreachable through fused_adam_update (compiled flag is false); keep
  // behaviour defined regardless.
  fused_adam_scalar(value, m, v, grad, n, c);
}

#endif

}  // namespace fsda::la::detail
