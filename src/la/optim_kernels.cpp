// Scalar fused-Adam kernel and runtime dispatch.  Compiled with
// -ffp-contract=off and WITHOUT -march=native (la/CMakeLists.txt): the
// bitwise scalar==AVX2 contract in optim_kernels.hpp forbids the compiler
// from fusing the multiply-adds here into FMAs the intrinsics path does not
// perform.
#include "la/optim_kernels.hpp"

#include <cmath>

#include "la/gemm.hpp"

namespace fsda::la {

namespace detail {

void fused_adam_scalar(double* value, double* m, double* v, const double* grad,
                       std::size_t n, const AdamStepConstants& c) {
  const double omb1 = 1.0 - c.beta1;
  const double omb2 = 1.0 - c.beta2;
  for (std::size_t j = 0; j < n; ++j) {
    const double g = grad[j];
    m[j] = c.beta1 * m[j] + omb1 * g;
    v[j] = c.beta2 * v[j] + omb2 * g * g;
    const double m_hat = m[j] / c.bias_corr1;
    const double v_hat = v[j] / c.bias_corr2;
    value[j] -= c.lr * (m_hat / (std::sqrt(v_hat) + c.eps) +
                        c.weight_decay * value[j]);
  }
}

}  // namespace detail

void fused_adam_update(double* value, double* m, double* v, const double* grad,
                       std::size_t n, const AdamStepConstants& c) {
  if (n == 0) return;
  if (active_gemm_isa() == GemmIsa::Avx2 &&
      detail::fused_adam_avx2_compiled()) {
    detail::fused_adam_avx2(value, m, v, grad, n, c);
  } else {
    detail::fused_adam_scalar(value, m, v, grad, n, c);
  }
}

}  // namespace fsda::la
