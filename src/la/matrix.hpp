// fsda::la -- dense row-major matrix of doubles.
//
// This is the numeric workhorse of the repository: the NN layers, the
// CI tests, CORAL, GMM, and the dataset generators all operate on Matrix.
// The class is a regular value type (copyable, movable, equality-comparable)
// with bounds-checked element access through operator() and FSDA_CHECK-guarded
// shape contracts on every operation.
//
// Since the destination-passing refactor, every value-returning operation is
// a thin wrapper over the kernels in kernels.hpp; hot paths should call the
// `*_into` kernels on views (view.hpp) instead so no per-step allocation
// happens.  A process-wide counter of heap buffer acquisitions
// (matrix_allocations()) backs the zero-allocation training-step tests.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fsda::la {

/// Number of matrix heap-buffer acquisitions since process start.  Counts
/// fresh allocations and capacity growth, not reuse of existing capacity;
/// a steady-state workspace training step must not advance this counter.
std::size_t matrix_allocations();

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Builds a rows x cols matrix that adopts `data` (row-major).
  static Matrix from_vector(std::size_t rows, std::size_t cols,
                            std::vector<double> data);

  /// rows x cols matrix with unspecified element values.  Use when every
  /// element is about to be overwritten (kernel destinations, scratch) so
  /// the zero-fill bandwidth of the filling constructor isn't paid twice.
  static Matrix uninit(std::size_t rows, std::size_t cols);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Matrix with iid entries drawn from N(0, stddev^2).
  static Matrix randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                      double stddev = 1.0);

  /// Matrix with iid entries drawn uniformly from [lo, hi).
  static Matrix rand_uniform(std::size_t rows, std::size_t cols,
                             common::Rng& rng, double lo, double hi);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Reshapes to rows x cols, reusing existing capacity when possible.
  /// Element values are unspecified afterwards (callers must overwrite);
  /// this is the workspace-slab primitive, not a data-preserving reshape.
  void resize(std::size_t rows, std::size_t cols);

  /// Sets every element to `value`.
  void fill(double value);

  /// Bounds-checked element access.  Inline: per-element call overhead in
  /// assembly/corruption loops shows up in training profiles; the check
  /// itself stays (it only formats on failure).
  double& operator()(std::size_t r, std::size_t c) {
    FSDA_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                     << ") out of " << rows_
                                                     << "x" << cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    FSDA_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                     << ") out of " << rows_
                                                     << "x" << cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage.
  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// Contiguous view of one row.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Copies of a row / column as vectors.
  [[nodiscard]] std::vector<double> row_vector(std::size_t r) const;
  [[nodiscard]] std::vector<double> col_vector(std::size_t c) const;

  /// Writes a vector into a row / column (sizes must match).
  void set_row(std::size_t r, std::span<const double> values);
  void set_col(std::size_t c, std::span<const double> values);

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// Matrix product this * other.
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  /// this^T * other without materializing the transpose.
  [[nodiscard]] Matrix transposed_matmul(const Matrix& other) const;

  /// this * other^T without materializing the transpose.
  [[nodiscard]] Matrix matmul_transposed(const Matrix& other) const;

  /// Elementwise operations (shapes must match).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  [[nodiscard]] Matrix operator+(const Matrix& other) const;
  [[nodiscard]] Matrix operator-(const Matrix& other) const;
  [[nodiscard]] Matrix operator*(double scalar) const;
  [[nodiscard]] Matrix hadamard(const Matrix& other) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// Applies f to every element in place.
  void apply(const std::function<double(double)>& f);

  /// Mapped copy.
  [[nodiscard]] Matrix map(const std::function<double(double)>& f) const;

  /// Adds a 1 x cols row vector to every row (broadcast).
  void add_row_broadcast(const Matrix& row_vector);

  /// Sum over rows -> 1 x cols matrix.
  [[nodiscard]] Matrix sum_rows() const;

  /// Mean over rows -> 1 x cols matrix.
  [[nodiscard]] Matrix mean_rows() const;

  /// Submatrix of the listed rows, in order.
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Submatrix of the listed columns, in order.
  [[nodiscard]] Matrix select_cols(std::span<const std::size_t> indices) const;

  /// Horizontal concatenation [this | other]; row counts must match.
  [[nodiscard]] Matrix hcat(const Matrix& other) const;

  /// Vertical concatenation; column counts must match.
  [[nodiscard]] Matrix vcat(const Matrix& other) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Largest |element|.
  [[nodiscard]] double max_abs() const;

  /// True when all elements are finite.
  [[nodiscard]] bool all_finite() const;

  /// Human-readable rendering (for logs and test failures).
  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  /// Grows data_ to n elements, bumping the allocation counter when the
  /// existing capacity is insufficient.
  void grow_storage(std::size_t n);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// scalar * M convenience.
Matrix operator*(double scalar, const Matrix& m);

/// Destination-passing gather/concat helpers (reuse out's capacity).
void select_rows_into(const Matrix& src, std::span<const std::size_t> indices,
                      Matrix& out);
void hcat_into(const Matrix& a, const Matrix& b, Matrix& out);
void vcat_into(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace fsda::la
