// fsda::la -- fused optimizer update kernels.
//
// Adam's per-element update reads four streams (value, m, v, grad) and
// writes three; the nn::Adam loop used to do this with scalar arithmetic
// that the compiler could not vectorize profitably across the div/sqrt.
// fused_adam_update() sweeps a parameter block once, applying the moment
// updates, bias correction, and decoupled weight decay in a single pass,
// with an AVX2 path (4 doubles per iteration) selected at runtime.
//
// Bitwise contract: scalar and AVX2 paths produce IDENTICAL results.  Both
// translation units are compiled with -ffp-contract=off (no silent FMA
// contraction) and the AVX2 kernel uses only mul/add/sub/div/sqrt
// intrinsics -- each a single correctly-rounded IEEE operation -- arranged
// in exactly the scalar expression order.  training_engine_test pins this,
// and it is what lets a fit running on any ISA reproduce the reference
// trajectory exactly.
#pragma once

#include <cstddef>

namespace fsda::la {

/// Per-step constants of the Adam update, hoisted out of the element loop.
/// bias_corr1/2 are 1 - beta^t for the current step t.
struct AdamStepConstants {
  double lr = 0.0;
  double beta1 = 0.0;
  double beta2 = 0.0;
  double eps = 0.0;
  double weight_decay = 0.0;
  double bias_corr1 = 1.0;
  double bias_corr2 = 1.0;
};

/// One fused Adam sweep over a contiguous block of n elements:
///   m = beta1*m + (1-beta1)*g
///   v = beta2*v + (1-beta2)*g*g
///   value -= lr * ((m/bc1) / (sqrt(v/bc2) + eps) + weight_decay*value)
/// Dispatches to the AVX2 kernel when active_gemm_isa() is Avx2; results are
/// bitwise identical either way (see file header).  Allocation-free.
void fused_adam_update(double* value, double* m, double* v, const double* grad,
                       std::size_t n, const AdamStepConstants& c);

namespace detail {
/// Scalar reference kernel (compiled with -ffp-contract=off).
void fused_adam_scalar(double* value, double* m, double* v, const double* grad,
                       std::size_t n, const AdamStepConstants& c);
/// AVX2 kernel, 4 lanes per iteration, scalar tail via fused_adam_scalar.
void fused_adam_avx2(double* value, double* m, double* v, const double* grad,
                     std::size_t n, const AdamStepConstants& c);
/// True when the AVX2 optimizer TU was compiled with AVX2 support.
[[nodiscard]] bool fused_adam_avx2_compiled();
}  // namespace detail

}  // namespace fsda::la
