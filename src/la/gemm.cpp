#include "la/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace fsda::la {

namespace {

std::atomic<GemmIsa> g_forced_isa{GemmIsa::Auto};

bool cpu_has_avx2_fma() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// Applies the transcendental epilogues in place over the destination.
/// Expressions mirror the nn activation layers exactly (activations.cpp),
/// so a fused plan stays within rounding noise of the layer-API forward.
void apply_transcendental(MatrixView out, GemmAct act) {
  switch (act) {
    case GemmAct::Tanh:
      for (std::size_t r = 0; r < out.rows(); ++r) {
        double* o = out.row_data(r);
        for (std::size_t c = 0; c < out.cols(); ++c) o[c] = std::tanh(o[c]);
      }
      break;
    case GemmAct::Sigmoid:
      for (std::size_t r = 0; r < out.rows(); ++r) {
        double* o = out.row_data(r);
        for (std::size_t c = 0; c < out.cols(); ++c) {
          const double x = o[c];
          if (x >= 0.0) {
            o[c] = 1.0 / (1.0 + std::exp(-x));
          } else {
            const double e = std::exp(x);
            o[c] = e / (1.0 + e);
          }
        }
      }
      break;
    case GemmAct::Softmax:
      // Same max-shifted algorithm as nn::softmax_rows_into.
      for (std::size_t r = 0; r < out.rows(); ++r) {
        double* o = out.row_data(r);
        const std::size_t n = out.cols();
        double mx = o[0];
        for (std::size_t c = 1; c < n; ++c) mx = std::max(mx, o[c]);
        double total = 0.0;
        for (std::size_t c = 0; c < n; ++c) {
          o[c] = std::exp(o[c] - mx);
          total += o[c];
        }
        FSDA_CHECK_MSG(total > 0.0, "gemm softmax row summed to zero");
        for (std::size_t c = 0; c < n; ++c) o[c] /= total;
      }
      break;
    default:
      break;
  }
}

// Same threshold as the blocked kernels (kernels.cpp): below it the pool
// dispatch overhead outweighs the work.
constexpr std::size_t kParallelFlopThreshold = std::size_t{1} << 18;

void check_grad_weight_shapes(ConstMatrixView a, ConstMatrixView dy,
                              MatrixView dw) {
  FSDA_CHECK_MSG(a.rows() == dy.rows(),
                 "gemm_grad_weights: batch mismatch, a has "
                     << a.rows() << " rows, dy has " << dy.rows());
  FSDA_CHECK_MSG(dw.rows() == a.cols() && dw.cols() == dy.cols(),
                 "gemm_grad_weights: destination is "
                     << dw.rows() << "x" << dw.cols() << ", expected "
                     << a.cols() << "x" << dy.cols());
  FSDA_CHECK_MSG(!views_overlap(dw, a) && !views_overlap(dw, dy),
                 "gemm_grad_weights: destination aliases an input");
}

void check_gemm_shapes(ConstMatrixView a, const PackedB& b, MatrixView out) {
  FSDA_CHECK_MSG(a.cols() == b.rows(), "gemm_packed: " << a.rows() << "x"
                                                       << a.cols() << " * "
                                                       << b.rows() << "x"
                                                       << b.cols());
  FSDA_CHECK_MSG(out.rows() == a.rows() && out.cols() == b.cols(),
                 "gemm_packed: destination is " << out.rows() << "x"
                                                << out.cols() << ", expected "
                                                << a.rows() << "x"
                                                << b.cols());
  FSDA_CHECK_MSG(!views_overlap(out, a),
                 "gemm_packed: destination aliases the input");
}

}  // namespace

void PackedB::pack(ConstMatrixView b) {
  k_ = b.rows();
  n_ = b.cols();
  const std::size_t panels = num_panels();
  data_.assign(panels * k_ * kPanel, 0.0);
  for (std::size_t p = 0; p < panels; ++p) {
    double* slab = data_.data() + p * k_ * kPanel;
    const std::size_t c0 = p * kPanel;
    const std::size_t width = std::min(kPanel, n_ - c0);
    for (std::size_t k = 0; k < k_; ++k) {
      const double* brow = b.row_data(k) + c0;
      double* dst = slab + k * kPanel;
      for (std::size_t j = 0; j < width; ++j) dst[j] = brow[j];
    }
  }
}

void PackedB::pack_transposed(ConstMatrixView b) {
  k_ = b.cols();
  n_ = b.rows();
  const std::size_t panels = num_panels();
  data_.assign(panels * k_ * kPanel, 0.0);
  // Panel p covers rows [c0, c0+width) of b, i.e. columns of bᵀ; lane j at
  // depth k holds bᵀ(k, c0+j) = b(c0+j, k).  Reads are contiguous along the
  // source row, writes stride kPanel within the slab.
  for (std::size_t p = 0; p < panels; ++p) {
    double* slab = data_.data() + p * k_ * kPanel;
    const std::size_t c0 = p * kPanel;
    const std::size_t width = std::min(kPanel, n_ - c0);
    for (std::size_t j = 0; j < width; ++j) {
      const double* brow = b.row_data(c0 + j);
      for (std::size_t k = 0; k < k_; ++k) slab[k * kPanel + j] = brow[k];
    }
  }
}

bool gemm_avx2_available() {
  static const bool available = detail::gemm_avx2_compiled() &&
                                cpu_has_avx2_fma();
  return available;
}

void set_gemm_isa(GemmIsa isa) {
  g_forced_isa.store(isa, std::memory_order_relaxed);
}

GemmIsa active_gemm_isa() {
  const GemmIsa forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced == GemmIsa::Scalar) return GemmIsa::Scalar;
  if (forced == GemmIsa::Avx2) {
    return gemm_avx2_available() ? GemmIsa::Avx2 : GemmIsa::Scalar;
  }
  return gemm_avx2_available() ? GemmIsa::Avx2 : GemmIsa::Scalar;
}

namespace detail {

void gemm_packed_scalar(ConstMatrixView a, const PackedB& b, MatrixView out,
                        const GemmEpilogue& epi) {
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  constexpr std::size_t NR = PackedB::kPanel;
  const bool relu = epi.act == GemmAct::ReLU;
  const bool leaky = epi.act == GemmAct::LeakyReLU;
  const double alpha = epi.leaky_alpha;
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row_data(i);
    double* orow = out.row_data(i);
    for (std::size_t p = 0; p * NR < n; ++p) {
      const double* __restrict slab = b.panel(p);
      const std::size_t c0 = p * NR;
      const std::size_t width = std::min(NR, n - c0);
      double acc[NR] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
      // k ascending per output element: the same accumulation chain as
      // matmul_into, so the scalar path agrees with the training kernel
      // to the ULP (pinned at 1e-12 by inference_test; the compiler's FMA
      // grouping keeps it from being bitwise).
      for (std::size_t k = 0; k < kk; ++k) {
        const double c = arow[k];
        const double* __restrict bk = slab + k * NR;
        for (std::size_t j = 0; j < NR; ++j) acc[j] += c * bk[j];
      }
      if (epi.bias != nullptr) {
        const double* bias = epi.bias + c0;
        for (std::size_t j = 0; j < width; ++j) acc[j] += bias[j];
      }
      if (relu) {
        for (std::size_t j = 0; j < width; ++j) {
          acc[j] = acc[j] > 0.0 ? acc[j] : 0.0;
        }
      } else if (leaky) {
        for (std::size_t j = 0; j < width; ++j) {
          acc[j] = acc[j] > 0.0 ? acc[j] : alpha * acc[j];
        }
      }
      for (std::size_t j = 0; j < width; ++j) orow[c0 + j] = acc[j];
    }
  }
}

void gemm_grad_weights_scalar(ConstMatrixView a, ConstMatrixView dy,
                              MatrixView dw, bool accumulate) {
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = dy.cols();
  // k outer so each dw row is finished in one sweep; per dw element the
  // accumulation runs i ascending -- the same chain as transposed_matmul_into,
  // which keeps packed-vs-legacy training within rounding noise.
  for (std::size_t k = 0; k < kk; ++k) {
    double* __restrict out = dw.row_data(k);
    if (!accumulate) std::fill_n(out, n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double c = a.row_data(i)[k];
      const double* __restrict g = dy.row_data(i);
      for (std::size_t j = 0; j < n; ++j) out[j] += c * g[j];
    }
  }
}

}  // namespace detail

void gemm_packed(ConstMatrixView a, const PackedB& b, MatrixView out,
                 const GemmEpilogue& epilogue) {
  check_gemm_shapes(a, b, out);
  if (out.empty()) return;
  const bool avx2 = active_gemm_isa() == GemmIsa::Avx2;
  auto run = [&](std::size_t r0, std::size_t r1) {
    const ConstMatrixView ab = a.row_block(r0, r1 - r0);
    const MatrixView ob = out.row_block(r0, r1 - r0);
    if (avx2) {
      detail::gemm_packed_avx2(ab, b, ob, epilogue);
    } else {
      detail::gemm_packed_scalar(ab, b, ob, epilogue);
    }
  };
  // Row partitioning never splits a per-element accumulation chain, so the
  // threaded result is bitwise identical to the serial one.
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  if (flops >= kParallelFlopThreshold && a.rows() >= 8) {
    common::parallel_for_chunked(a.rows(), run);
  } else {
    run(0, a.rows());
  }
  apply_transcendental(out, epilogue.act);
}

void gemm_grad_weights(ConstMatrixView a, ConstMatrixView dy, MatrixView dw,
                       bool accumulate) {
  check_grad_weight_shapes(a, dy, dw);
  if (dw.empty()) return;
  const bool avx2 = active_gemm_isa() == GemmIsa::Avx2;
  auto run = [&](std::size_t k0, std::size_t k1) {
    const ConstMatrixView ab = a.col_block(k0, k1 - k0);
    const MatrixView dwb = dw.row_block(k0, k1 - k0);
    if (avx2) {
      detail::gemm_grad_weights_avx2(ab, dy, dwb, accumulate);
    } else {
      detail::gemm_grad_weights_scalar(ab, dy, dwb, accumulate);
    }
  };
  // Partitioned over dw rows (input features), NOT batch rows: splitting the
  // batch would split each element's i-ascending chain and break the
  // serial==threaded bitwise guarantee.
  const std::size_t flops = a.rows() * a.cols() * dy.cols();
  if (flops >= kParallelFlopThreshold && dw.rows() >= 8) {
    common::parallel_for_chunked(dw.rows(), run);
  } else {
    run(0, dw.rows());
  }
}

}  // namespace fsda::la
