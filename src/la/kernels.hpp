// fsda::la -- destination-passing kernels over matrix views.
//
// Every routine writes its result into a caller-supplied view that must
// already have the result shape; nothing here allocates.  The matmul family
// is register-blocked (4 output rows per sweep of B) and parallelised over
// row panels of the destination via common::ThreadPool::global() once the
// product is large enough to amortise the fork, so it speeds up both the
// NN training loops and the CI-test regressions without any caller changes.
//
// Aliasing contract: the matmul family requires `out` to be disjoint from
// both operands (checked, throws InvariantError); the elementwise kernels
// allow `out` to alias an input exactly (in-place update).
#pragma once

#include "common/error.hpp"
#include "la/view.hpp"

namespace fsda::la {

/// out = a * b.  Shapes: (m x k) * (k x n) -> (m x n).
void matmul_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// out (+)= a^T * b without materialising the transpose for the caller.
/// Shapes: (k x m)^T * (k x n) -> (m x n).
void transposed_matmul_into(ConstMatrixView a, ConstMatrixView b,
                            MatrixView out, bool accumulate = false);

/// out = a * b^T.  Shapes: (m x k) * (n x k)^T -> (m x n).
void matmul_transposed_into(ConstMatrixView a, ConstMatrixView b,
                            MatrixView out);

/// out = a^T (blocked; out must not alias a).
void transpose_into(ConstMatrixView a, MatrixView out);

/// Elementwise kernels; shapes must match, out may alias an input exactly.
void add_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void sub_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void hadamard_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void scale_into(ConstMatrixView a, double scalar, MatrixView out);
void copy_into(ConstMatrixView a, MatrixView out);
void fill(MatrixView out, double value);

/// out = a + broadcast of the 1 x cols `row` over every row of a.
void add_row_broadcast_into(ConstMatrixView a, ConstMatrixView row,
                            MatrixView out);

/// out (1 x cols) (+)= column sums of a.
void sum_rows_into(ConstMatrixView a, MatrixView out, bool accumulate = false);

/// Writes the lower-triangular Cholesky factor of SPD `a` into `out` (the
/// strict upper triangle is zeroed).  `out` may alias `a` exactly, in which
/// case the factorization runs in place.  Throws NumericError when any pivot
/// (squared diagonal entry of the factor) falls at or below `min_pivot`; the
/// default rejects only non-positive pivots.  Callers that need a breakdown
/// signal for nearly-singular inputs (the CI-test fast path) pass a small
/// positive threshold instead.
void cholesky_into(ConstMatrixView a, MatrixView out, double min_pivot = 0.0);

/// Solves L X = B (transpose = false) or L^T X = B (transpose = true) in
/// place on `b`, where `tri` holds a lower-triangular factor as produced by
/// cholesky_into.  B may have any number of columns.
void solve_triangular_into(ConstMatrixView tri, MatrixView b,
                           bool transpose = false);

namespace detail {
inline void check_same_shape(ConstMatrixView a, ConstMatrixView b,
                             const char* op) {
  FSDA_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                 op << ": shape mismatch (" << a.rows() << "x" << a.cols()
                    << ") vs (" << b.rows() << "x" << b.cols() << ")");
}
}  // namespace detail

/// ReLU / LeakyReLU forward and backward, elementwise.  These live in the
/// kernels TU (compiled -O3 -march=native) so the select loops vectorize
/// with the full ISA instead of baseline SSE2 in whichever TU a layer
/// happens to sit.  Pure compare/select/multiply -- no adds to contract --
/// so results are bitwise identical to the header-template apply_into /
/// zip_into forms they replace.
void relu_into(ConstMatrixView a, MatrixView out);
void relu_backward_into(ConstMatrixView grad_out, ConstMatrixView input,
                        MatrixView grad_in);
void leaky_relu_into(ConstMatrixView a, MatrixView out, double alpha);
void leaky_relu_backward_into(ConstMatrixView grad_out, ConstMatrixView input,
                              MatrixView grad_in, double alpha);

/// out[i] = f(a[i]) elementwise.  Templated on the callable so tight loops
/// inline the body instead of paying a std::function call per element.
template <typename F>
void apply_into(ConstMatrixView a, MatrixView out, F&& f) {
  detail::check_same_shape(a, out, "apply_into");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* in = a.row_data(r);
    double* o = out.row_data(r);
    for (std::size_t c = 0; c < a.cols(); ++c) o[c] = f(in[c]);
  }
}

/// out[i] = f(a[i], b[i]) elementwise (e.g. activation backward passes).
template <typename F>
void zip_into(ConstMatrixView a, ConstMatrixView b, MatrixView out, F&& f) {
  detail::check_same_shape(a, b, "zip_into");
  detail::check_same_shape(a, out, "zip_into");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* x = a.row_data(r);
    const double* y = b.row_data(r);
    double* o = out.row_data(r);
    for (std::size_t c = 0; c < a.cols(); ++c) o[c] = f(x[c], y[c]);
  }
}

}  // namespace fsda::la
