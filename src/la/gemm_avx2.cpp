// AVX2/FMA micro-kernel for gemm_packed.  This translation unit is the only
// one compiled with -mavx2 -mfma (see la/CMakeLists.txt); callers reach it
// exclusively through the runtime dispatch in gemm.cpp, which checks
// __builtin_cpu_supports before jumping here, so the binary stays safe on
// older x86-64 and non-x86 hosts (where the stub below reports the kernel
// as not compiled).
//
// Register tile: 6 output rows x 8 columns = 12 ymm accumulators plus one
// broadcast register per A row and two B loads per k step (15 of the 16 ymm
// registers).  Six rows matter on a single port-pair: with 8 accumulators
// each chain is touched every ~4 cycles, inside FMA latency, so the 4x8
// tile stalls; 12 accumulators space the chains past the latency and keep
// both FMA ports busy.  Accumulation per output element runs over k in
// ascending order regardless of the row grouping, matching the scalar
// kernel and matmul_into up to FMA rounding (the fused multiply-add rounds
// once where the scalar path rounds twice -- within 1e-12 over the depths
// used here, which inference_test pins).
#include "la/gemm.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include <algorithm>

namespace fsda::la::detail {

#if defined(__AVX2__) && defined(__FMA__)

bool gemm_avx2_compiled() { return true; }

namespace {

/// Fused ReLU / LeakyReLU on a vector: exact vector forms of the scalar
/// expressions (max(0,x); x>0 ? x : alpha*x).
inline __m256d apply_act(__m256d v, GemmAct act, __m256d alpha) {
  if (act == GemmAct::ReLU) {
    return _mm256_max_pd(v, _mm256_setzero_pd());
  }
  if (act == GemmAct::LeakyReLU) {
    const __m256d scaled = _mm256_mul_pd(v, alpha);
    const __m256d mask = _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GT_OQ);
    return _mm256_blendv_pd(scaled, v, mask);
  }
  return v;
}

/// Stores the low `width` lanes of {lo, hi} to dst (width in (0, 8]).
inline void store_panel(double* dst, __m256d lo, __m256d hi,
                        std::size_t width) {
  if (width == PackedB::kPanel) {
    _mm256_storeu_pd(dst, lo);
    _mm256_storeu_pd(dst + 4, hi);
    return;
  }
  alignas(32) double tmp[PackedB::kPanel];
  _mm256_store_pd(tmp, lo);
  _mm256_store_pd(tmp + 4, hi);
  for (std::size_t j = 0; j < width; ++j) dst[j] = tmp[j];
}

}  // namespace

void gemm_packed_avx2(ConstMatrixView a, const PackedB& b, MatrixView out,
                      const GemmEpilogue& epi) {
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  constexpr std::size_t NR = PackedB::kPanel;
  const GemmAct fused = (epi.act == GemmAct::ReLU ||
                         epi.act == GemmAct::LeakyReLU)
                            ? epi.act
                            : GemmAct::None;
  const __m256d valpha = _mm256_set1_pd(epi.leaky_alpha);
  for (std::size_t p = 0; p * NR < n; ++p) {
    const double* __restrict slab = b.panel(p);
    const std::size_t c0 = p * NR;
    const std::size_t width = std::min(NR, n - c0);
    __m256d bias_lo = _mm256_setzero_pd();
    __m256d bias_hi = _mm256_setzero_pd();
    if (epi.bias != nullptr) {
      if (width == NR) {
        bias_lo = _mm256_loadu_pd(epi.bias + c0);
        bias_hi = _mm256_loadu_pd(epi.bias + c0 + 4);
      } else {
        alignas(32) double tmp[NR] = {0, 0, 0, 0, 0, 0, 0, 0};
        for (std::size_t j = 0; j < width; ++j) tmp[j] = epi.bias[c0 + j];
        bias_lo = _mm256_load_pd(tmp);
        bias_hi = _mm256_load_pd(tmp + 4);
      }
    }
    std::size_t i = 0;
    for (; i + 6 <= m; i += 6) {
      const double* a0 = a.row_data(i);
      const double* a1 = a.row_data(i + 1);
      const double* a2 = a.row_data(i + 2);
      const double* a3 = a.row_data(i + 3);
      const double* a4 = a.row_data(i + 4);
      const double* a5 = a.row_data(i + 5);
      __m256d acc0l = _mm256_setzero_pd(), acc0h = _mm256_setzero_pd();
      __m256d acc1l = _mm256_setzero_pd(), acc1h = _mm256_setzero_pd();
      __m256d acc2l = _mm256_setzero_pd(), acc2h = _mm256_setzero_pd();
      __m256d acc3l = _mm256_setzero_pd(), acc3h = _mm256_setzero_pd();
      __m256d acc4l = _mm256_setzero_pd(), acc4h = _mm256_setzero_pd();
      __m256d acc5l = _mm256_setzero_pd(), acc5h = _mm256_setzero_pd();
      // k unrolled by two: trims loop overhead per FMA without changing
      // any per-element accumulation order.
      const auto step = [&](std::size_t k) {
        const __m256d blo = _mm256_loadu_pd(slab + k * NR);
        const __m256d bhi = _mm256_loadu_pd(slab + k * NR + 4);
        __m256d cv = _mm256_set1_pd(a0[k]);
        acc0l = _mm256_fmadd_pd(cv, blo, acc0l);
        acc0h = _mm256_fmadd_pd(cv, bhi, acc0h);
        cv = _mm256_set1_pd(a1[k]);
        acc1l = _mm256_fmadd_pd(cv, blo, acc1l);
        acc1h = _mm256_fmadd_pd(cv, bhi, acc1h);
        cv = _mm256_set1_pd(a2[k]);
        acc2l = _mm256_fmadd_pd(cv, blo, acc2l);
        acc2h = _mm256_fmadd_pd(cv, bhi, acc2h);
        cv = _mm256_set1_pd(a3[k]);
        acc3l = _mm256_fmadd_pd(cv, blo, acc3l);
        acc3h = _mm256_fmadd_pd(cv, bhi, acc3h);
        cv = _mm256_set1_pd(a4[k]);
        acc4l = _mm256_fmadd_pd(cv, blo, acc4l);
        acc4h = _mm256_fmadd_pd(cv, bhi, acc4h);
        cv = _mm256_set1_pd(a5[k]);
        acc5l = _mm256_fmadd_pd(cv, blo, acc5l);
        acc5h = _mm256_fmadd_pd(cv, bhi, acc5h);
      };
      std::size_t k = 0;
      for (; k + 2 <= kk; k += 2) {
        step(k);
        step(k + 1);
      }
      if (k < kk) step(k);
      acc0l = apply_act(_mm256_add_pd(acc0l, bias_lo), fused, valpha);
      acc0h = apply_act(_mm256_add_pd(acc0h, bias_hi), fused, valpha);
      acc1l = apply_act(_mm256_add_pd(acc1l, bias_lo), fused, valpha);
      acc1h = apply_act(_mm256_add_pd(acc1h, bias_hi), fused, valpha);
      acc2l = apply_act(_mm256_add_pd(acc2l, bias_lo), fused, valpha);
      acc2h = apply_act(_mm256_add_pd(acc2h, bias_hi), fused, valpha);
      acc3l = apply_act(_mm256_add_pd(acc3l, bias_lo), fused, valpha);
      acc3h = apply_act(_mm256_add_pd(acc3h, bias_hi), fused, valpha);
      acc4l = apply_act(_mm256_add_pd(acc4l, bias_lo), fused, valpha);
      acc4h = apply_act(_mm256_add_pd(acc4h, bias_hi), fused, valpha);
      acc5l = apply_act(_mm256_add_pd(acc5l, bias_lo), fused, valpha);
      acc5h = apply_act(_mm256_add_pd(acc5h, bias_hi), fused, valpha);
      store_panel(out.row_data(i) + c0, acc0l, acc0h, width);
      store_panel(out.row_data(i + 1) + c0, acc1l, acc1h, width);
      store_panel(out.row_data(i + 2) + c0, acc2l, acc2h, width);
      store_panel(out.row_data(i + 3) + c0, acc3l, acc3h, width);
      store_panel(out.row_data(i + 4) + c0, acc4l, acc4h, width);
      store_panel(out.row_data(i + 5) + c0, acc5l, acc5h, width);
    }
    for (; i < m; ++i) {
      const double* arow = a.row_data(i);
      __m256d accl = _mm256_setzero_pd();
      __m256d acch = _mm256_setzero_pd();
      for (std::size_t k = 0; k < kk; ++k) {
        const __m256d cv = _mm256_set1_pd(arow[k]);
        accl = _mm256_fmadd_pd(cv, _mm256_loadu_pd(slab + k * NR), accl);
        acch = _mm256_fmadd_pd(cv, _mm256_loadu_pd(slab + k * NR + 4), acch);
      }
      accl = apply_act(_mm256_add_pd(accl, bias_lo), fused, valpha);
      acch = apply_act(_mm256_add_pd(acch, bias_hi), fused, valpha);
      store_panel(out.row_data(i) + c0, accl, acch, width);
    }
  }
}

namespace {

// Finishes one dw row from column `j0` on: a 4-wide vector tile, then a
// scalar tail.  Shared by the remainder paths of gemm_grad_weights_avx2.
void grad_weights_row_tail(ConstMatrixView a, ConstMatrixView dy,
                           double* __restrict out, std::size_t k,
                           std::size_t j0, bool accumulate) {
  const std::size_t m = a.rows();
  const std::size_t n = dy.cols();
  std::size_t j = j0;
  for (; j + 4 <= n; j += 4) {
    __m256d acc =
        accumulate ? _mm256_loadu_pd(out + j) : _mm256_setzero_pd();
    for (std::size_t i = 0; i < m; ++i) {
      const __m256d av = _mm256_set1_pd(a.row_data(i)[k]);
      acc = _mm256_fmadd_pd(av, _mm256_loadu_pd(dy.row_data(i) + j), acc);
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) {
    double acc = accumulate ? out[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      acc += a.row_data(i)[k] * dy.row_data(i)[j];
    }
    out[j] = acc;
  }
}

}  // namespace

void gemm_grad_weights_avx2(ConstMatrixView a, ConstMatrixView dy,
                            MatrixView dw, bool accumulate) {
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = dy.cols();
  // 6x8 register tile: six dw rows x eight columns, twelve ymm accumulators
  // (plus gl/gh and one broadcast register -- 15 of 16 ymm).  Per reduction
  // step i the kernel loads a(i, k..k+5) -- contiguous within a's row -- and
  // two ymm of dy(i, j..j+7); each dy load feeds six accumulator rows and
  // each broadcast feeds eight columns, which is what the one-row-at-a-time
  // sweep lacked (it re-streamed all of dy once per dw row).  Twelve chains
  // also space each accumulator's reuse past the FMA latency, like the
  // forward kernel's 6x8 tile.  Per element the i loop still ascends in a
  // single chain, the same order as the scalar kernel up to FMA rounding.
  std::size_t k = 0;
  for (; k + 6 <= kk; k += 6) {
    double* __restrict out0 = dw.row_data(k);
    double* __restrict out1 = dw.row_data(k + 1);
    double* __restrict out2 = dw.row_data(k + 2);
    double* __restrict out3 = dw.row_data(k + 3);
    double* __restrict out4 = dw.row_data(k + 4);
    double* __restrict out5 = dw.row_data(k + 5);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d a0l, a0h, a1l, a1h, a2l, a2h, a3l, a3h, a4l, a4h, a5l, a5h;
      if (accumulate) {
        a0l = _mm256_loadu_pd(out0 + j);
        a0h = _mm256_loadu_pd(out0 + j + 4);
        a1l = _mm256_loadu_pd(out1 + j);
        a1h = _mm256_loadu_pd(out1 + j + 4);
        a2l = _mm256_loadu_pd(out2 + j);
        a2h = _mm256_loadu_pd(out2 + j + 4);
        a3l = _mm256_loadu_pd(out3 + j);
        a3h = _mm256_loadu_pd(out3 + j + 4);
        a4l = _mm256_loadu_pd(out4 + j);
        a4h = _mm256_loadu_pd(out4 + j + 4);
        a5l = _mm256_loadu_pd(out5 + j);
        a5h = _mm256_loadu_pd(out5 + j + 4);
      } else {
        a0l = a0h = a1l = a1h = a2l = a2h = _mm256_setzero_pd();
        a3l = a3h = a4l = a4h = a5l = a5h = _mm256_setzero_pd();
      }
      for (std::size_t i = 0; i < m; ++i) {
        const double* __restrict arow = a.row_data(i) + k;
        const double* __restrict g = dy.row_data(i) + j;
        const __m256d gl = _mm256_loadu_pd(g);
        const __m256d gh = _mm256_loadu_pd(g + 4);
        __m256d av = _mm256_set1_pd(arow[0]);
        a0l = _mm256_fmadd_pd(av, gl, a0l);
        a0h = _mm256_fmadd_pd(av, gh, a0h);
        av = _mm256_set1_pd(arow[1]);
        a1l = _mm256_fmadd_pd(av, gl, a1l);
        a1h = _mm256_fmadd_pd(av, gh, a1h);
        av = _mm256_set1_pd(arow[2]);
        a2l = _mm256_fmadd_pd(av, gl, a2l);
        a2h = _mm256_fmadd_pd(av, gh, a2h);
        av = _mm256_set1_pd(arow[3]);
        a3l = _mm256_fmadd_pd(av, gl, a3l);
        a3h = _mm256_fmadd_pd(av, gh, a3h);
        av = _mm256_set1_pd(arow[4]);
        a4l = _mm256_fmadd_pd(av, gl, a4l);
        a4h = _mm256_fmadd_pd(av, gh, a4h);
        av = _mm256_set1_pd(arow[5]);
        a5l = _mm256_fmadd_pd(av, gl, a5l);
        a5h = _mm256_fmadd_pd(av, gh, a5h);
      }
      _mm256_storeu_pd(out0 + j, a0l);
      _mm256_storeu_pd(out0 + j + 4, a0h);
      _mm256_storeu_pd(out1 + j, a1l);
      _mm256_storeu_pd(out1 + j + 4, a1h);
      _mm256_storeu_pd(out2 + j, a2l);
      _mm256_storeu_pd(out2 + j + 4, a2h);
      _mm256_storeu_pd(out3 + j, a3l);
      _mm256_storeu_pd(out3 + j + 4, a3h);
      _mm256_storeu_pd(out4 + j, a4l);
      _mm256_storeu_pd(out4 + j + 4, a4h);
      _mm256_storeu_pd(out5 + j, a5l);
      _mm256_storeu_pd(out5 + j + 4, a5h);
    }
    grad_weights_row_tail(a, dy, out0, k, j, accumulate);
    grad_weights_row_tail(a, dy, out1, k + 1, j, accumulate);
    grad_weights_row_tail(a, dy, out2, k + 2, j, accumulate);
    grad_weights_row_tail(a, dy, out3, k + 3, j, accumulate);
    grad_weights_row_tail(a, dy, out4, k + 4, j, accumulate);
    grad_weights_row_tail(a, dy, out5, k + 5, j, accumulate);
  }
  for (; k < kk; ++k) {
    grad_weights_row_tail(a, dy, dw.row_data(k), k, 0, accumulate);
  }
}

#else  // !(__AVX2__ && __FMA__)

bool gemm_avx2_compiled() { return false; }

void gemm_packed_avx2(ConstMatrixView a, const PackedB& b, MatrixView out,
                      const GemmEpilogue& epi) {
  // Unreachable through the dispatcher (gemm_avx2_available() is false when
  // the kernel was not compiled); keep behaviour defined regardless.
  gemm_packed_scalar(a, b, out, epi);
}

void gemm_grad_weights_avx2(ConstMatrixView a, ConstMatrixView dy,
                            MatrixView dw, bool accumulate) {
  gemm_grad_weights_scalar(a, dy, dw, accumulate);
}

#endif

}  // namespace fsda::la::detail
