// AVX2/FMA micro-kernel for gemm_packed.  This translation unit is the only
// one compiled with -mavx2 -mfma (see la/CMakeLists.txt); callers reach it
// exclusively through the runtime dispatch in gemm.cpp, which checks
// __builtin_cpu_supports before jumping here, so the binary stays safe on
// older x86-64 and non-x86 hosts (where the stub below reports the kernel
// as not compiled).
//
// Register tile: 4 output rows x 8 columns = 8 ymm accumulators plus one
// broadcast register per A row and two B loads per k step; accumulation per
// output element runs over k in ascending order, matching the scalar kernel
// and matmul_into up to FMA rounding (the fused multiply-add rounds once
// where the scalar path rounds twice -- within 1e-12 over the depths used
// here, which inference_test pins).
#include "la/gemm.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include <algorithm>

namespace fsda::la::detail {

#if defined(__AVX2__) && defined(__FMA__)

bool gemm_avx2_compiled() { return true; }

namespace {

/// Fused ReLU / LeakyReLU on a vector: exact vector forms of the scalar
/// expressions (max(0,x); x>0 ? x : alpha*x).
inline __m256d apply_act(__m256d v, GemmAct act, __m256d alpha) {
  if (act == GemmAct::ReLU) {
    return _mm256_max_pd(v, _mm256_setzero_pd());
  }
  if (act == GemmAct::LeakyReLU) {
    const __m256d scaled = _mm256_mul_pd(v, alpha);
    const __m256d mask = _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GT_OQ);
    return _mm256_blendv_pd(scaled, v, mask);
  }
  return v;
}

/// Stores the low `width` lanes of {lo, hi} to dst (width in (0, 8]).
inline void store_panel(double* dst, __m256d lo, __m256d hi,
                        std::size_t width) {
  if (width == PackedB::kPanel) {
    _mm256_storeu_pd(dst, lo);
    _mm256_storeu_pd(dst + 4, hi);
    return;
  }
  alignas(32) double tmp[PackedB::kPanel];
  _mm256_store_pd(tmp, lo);
  _mm256_store_pd(tmp + 4, hi);
  for (std::size_t j = 0; j < width; ++j) dst[j] = tmp[j];
}

}  // namespace

void gemm_packed_avx2(ConstMatrixView a, const PackedB& b, MatrixView out,
                      const GemmEpilogue& epi) {
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  constexpr std::size_t NR = PackedB::kPanel;
  const GemmAct fused = (epi.act == GemmAct::ReLU ||
                         epi.act == GemmAct::LeakyReLU)
                            ? epi.act
                            : GemmAct::None;
  const __m256d valpha = _mm256_set1_pd(epi.leaky_alpha);
  for (std::size_t p = 0; p * NR < n; ++p) {
    const double* __restrict slab = b.panel(p);
    const std::size_t c0 = p * NR;
    const std::size_t width = std::min(NR, n - c0);
    __m256d bias_lo = _mm256_setzero_pd();
    __m256d bias_hi = _mm256_setzero_pd();
    if (epi.bias != nullptr) {
      if (width == NR) {
        bias_lo = _mm256_loadu_pd(epi.bias + c0);
        bias_hi = _mm256_loadu_pd(epi.bias + c0 + 4);
      } else {
        alignas(32) double tmp[NR] = {0, 0, 0, 0, 0, 0, 0, 0};
        for (std::size_t j = 0; j < width; ++j) tmp[j] = epi.bias[c0 + j];
        bias_lo = _mm256_load_pd(tmp);
        bias_hi = _mm256_load_pd(tmp + 4);
      }
    }
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double* a0 = a.row_data(i);
      const double* a1 = a.row_data(i + 1);
      const double* a2 = a.row_data(i + 2);
      const double* a3 = a.row_data(i + 3);
      __m256d acc0l = _mm256_setzero_pd(), acc0h = _mm256_setzero_pd();
      __m256d acc1l = _mm256_setzero_pd(), acc1h = _mm256_setzero_pd();
      __m256d acc2l = _mm256_setzero_pd(), acc2h = _mm256_setzero_pd();
      __m256d acc3l = _mm256_setzero_pd(), acc3h = _mm256_setzero_pd();
      for (std::size_t k = 0; k < kk; ++k) {
        const __m256d blo = _mm256_loadu_pd(slab + k * NR);
        const __m256d bhi = _mm256_loadu_pd(slab + k * NR + 4);
        const __m256d c0v = _mm256_set1_pd(a0[k]);
        acc0l = _mm256_fmadd_pd(c0v, blo, acc0l);
        acc0h = _mm256_fmadd_pd(c0v, bhi, acc0h);
        const __m256d c1v = _mm256_set1_pd(a1[k]);
        acc1l = _mm256_fmadd_pd(c1v, blo, acc1l);
        acc1h = _mm256_fmadd_pd(c1v, bhi, acc1h);
        const __m256d c2v = _mm256_set1_pd(a2[k]);
        acc2l = _mm256_fmadd_pd(c2v, blo, acc2l);
        acc2h = _mm256_fmadd_pd(c2v, bhi, acc2h);
        const __m256d c3v = _mm256_set1_pd(a3[k]);
        acc3l = _mm256_fmadd_pd(c3v, blo, acc3l);
        acc3h = _mm256_fmadd_pd(c3v, bhi, acc3h);
      }
      acc0l = apply_act(_mm256_add_pd(acc0l, bias_lo), fused, valpha);
      acc0h = apply_act(_mm256_add_pd(acc0h, bias_hi), fused, valpha);
      acc1l = apply_act(_mm256_add_pd(acc1l, bias_lo), fused, valpha);
      acc1h = apply_act(_mm256_add_pd(acc1h, bias_hi), fused, valpha);
      acc2l = apply_act(_mm256_add_pd(acc2l, bias_lo), fused, valpha);
      acc2h = apply_act(_mm256_add_pd(acc2h, bias_hi), fused, valpha);
      acc3l = apply_act(_mm256_add_pd(acc3l, bias_lo), fused, valpha);
      acc3h = apply_act(_mm256_add_pd(acc3h, bias_hi), fused, valpha);
      store_panel(out.row_data(i) + c0, acc0l, acc0h, width);
      store_panel(out.row_data(i + 1) + c0, acc1l, acc1h, width);
      store_panel(out.row_data(i + 2) + c0, acc2l, acc2h, width);
      store_panel(out.row_data(i + 3) + c0, acc3l, acc3h, width);
    }
    for (; i < m; ++i) {
      const double* arow = a.row_data(i);
      __m256d accl = _mm256_setzero_pd();
      __m256d acch = _mm256_setzero_pd();
      for (std::size_t k = 0; k < kk; ++k) {
        const __m256d cv = _mm256_set1_pd(arow[k]);
        accl = _mm256_fmadd_pd(cv, _mm256_loadu_pd(slab + k * NR), accl);
        acch = _mm256_fmadd_pd(cv, _mm256_loadu_pd(slab + k * NR + 4), acch);
      }
      accl = apply_act(_mm256_add_pd(accl, bias_lo), fused, valpha);
      acch = apply_act(_mm256_add_pd(acch, bias_hi), fused, valpha);
      store_panel(out.row_data(i) + c0, accl, acch, width);
    }
  }
}

#else  // !(__AVX2__ && __FMA__)

bool gemm_avx2_compiled() { return false; }

void gemm_packed_avx2(ConstMatrixView a, const PackedB& b, MatrixView out,
                      const GemmEpilogue& epi) {
  // Unreachable through the dispatcher (gemm_avx2_available() is false when
  // the kernel was not compiled); keep behaviour defined regardless.
  gemm_packed_scalar(a, b, out, epi);
}

#endif

}  // namespace fsda::la::detail
