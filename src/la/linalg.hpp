// fsda::la -- dense decompositions and solvers built on Matrix.
//
// Used by the Fisher-z partial-correlation CI test (inverting correlation
// submatrices), CORAL (covariance square roots), and the GMM (Gaussian
// densities).  All routines throw NumericError on singular inputs instead of
// producing NaNs silently.
#pragma once

#include "la/matrix.hpp"

namespace fsda::la {

/// Cholesky factor L (lower triangular) with A = L L^T.
/// Requires A symmetric positive definite; throws NumericError otherwise.
Matrix cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky. b may have multiple columns.
Matrix cholesky_solve(const Matrix& a, const Matrix& b);

/// General solver via partially pivoted LU. b may have multiple columns.
Matrix lu_solve(const Matrix& a, const Matrix& b);

/// Matrix inverse via LU; throws NumericError on singular input.
Matrix inverse(const Matrix& a);

/// Determinant via LU (sign-tracked).
double determinant(const Matrix& a);

/// log(det(A)) for SPD A via Cholesky (numerically stable).
double log_det_spd(const Matrix& a);

/// Symmetric matrix square root A^(1/2) via Jacobi eigendecomposition.
/// Eigenvalues below `eps` are clamped to eps (shrinkage for near-singular
/// covariance estimates, as used by CORAL in few-shot regimes).
Matrix sqrt_spd(const Matrix& a, double eps = 1e-10);

/// Inverse symmetric square root A^(-1/2), with the same clamping.
Matrix inv_sqrt_spd(const Matrix& a, double eps = 1e-10);

/// Jacobi eigendecomposition of a symmetric matrix.
/// Returns eigenvalues ascending; eigenvectors as columns of `vectors`.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;
};
EigenResult eigen_symmetric(const Matrix& a, int max_sweeps = 100);

}  // namespace fsda::la
