#include "obs/perfetto_export.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace fsda::obs {

namespace {

double ts_us(std::uint64_t ts_ns) {
  return static_cast<double>(ts_ns) / 1000.0;
}

void append_trace_event(std::string& out, const Event& e,
                        const std::string& name, bool first) {
  if (!first) out += ",\n";
  out += "    {\"name\":";
  out += json_string(name);
  out += ",\"cat\":\"";
  out += to_string(e.cat);
  out += "\",\"ph\":\"";
  out += to_string(e.type);
  out += "\",\"ts\":";
  out += json_number(ts_us(e.ts_ns));
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  switch (e.type) {
    case EventType::Instant:
      out += ",\"s\":\"t\",\"args\":{\"value\":";
      out += json_number(e.value);
      out += "}";
      break;
    case EventType::Counter:
      out += ",\"args\":{\"value\":";
      out += json_number(e.value);
      out += "}";
      break;
    case EventType::Begin:
    case EventType::End:
      break;
  }
  out += "}";
}

EventType type_from_ph(const std::string& ph) {
  if (ph == "B") return EventType::Begin;
  if (ph == "E") return EventType::End;
  if (ph == "C") return EventType::Counter;
  return EventType::Instant;
}

EventCategory cat_from_string(const std::string& cat) {
  if (cat == "serving") return EventCategory::Serving;
  if (cat == "training") return EventCategory::Training;
  if (cat == "drift") return EventCategory::Drift;
  if (cat == "causal") return EventCategory::Causal;
  return EventCategory::System;
}

}  // namespace

std::string journal_to_perfetto(const Journal& journal) {
  std::string out;
  out.reserve(128 + journal.events.size() * 96);
  out += "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"journal\": \"fsda\", \"epoch_unix_ns\": \"";
  out += std::to_string(journal.epoch_unix_ns);
  out += "\", \"dropped_events\": \"";
  out += std::to_string(journal.dropped_total);
  out += "\"},\n  \"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : journal.events) {
    append_trace_event(out, e, journal.name(e.name_id), first);
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string journal_to_jsonl(const Journal& journal) {
  std::string out;
  out.reserve(128 + journal.events.size() * 96);
  out += "{\"journal\":\"fsda\",\"epoch_unix_ns\":";
  out += std::to_string(journal.epoch_unix_ns);
  out += ",\"dropped_events\":";
  out += std::to_string(journal.dropped_total);
  out += ",\"events\":";
  out += std::to_string(journal.events.size());
  out += "}\n";
  for (const Event& e : journal.events) {
    out += "{\"ts_ns\":";
    out += std::to_string(e.ts_ns);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ph\":\"";
    out += to_string(e.type);
    out += "\",\"cat\":\"";
    out += to_string(e.cat);
    out += "\",\"name\":";
    out += json_string(journal.name(e.name_id));
    out += ",\"value\":";
    out += json_number(e.value);
    out += "}\n";
  }
  return out;
}

bool write_perfetto_file(const Journal& journal, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << journal_to_perfetto(journal);
  return static_cast<bool>(out);
}

bool read_jsonl_journal(const std::string& jsonl_path, Journal& out) {
  std::ifstream in(jsonl_path);
  if (!in) return false;
  out = Journal{};
  std::unordered_map<std::string, std::uint32_t> ids;
  bool saw_any = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = json_parse(line);
    if (!parsed || !parsed->is_object()) continue;  // skip foreign lines
    if (parsed->find("journal") != nullptr) {
      // Header line; dropped counts accumulate across appended dumps.
      saw_any = true;
      out.epoch_unix_ns = static_cast<std::uint64_t>(
          parsed->number_or("epoch_unix_ns", 0.0));
      out.dropped_total += static_cast<std::uint64_t>(
          parsed->number_or("dropped_events", 0.0));
      continue;
    }
    const JsonValue* name = parsed->find("name");
    const JsonValue* ts = parsed->find("ts_ns");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number()) {
      continue;
    }
    saw_any = true;
    Event e;
    e.ts_ns = static_cast<std::uint64_t>(ts->number);
    e.tid = static_cast<std::uint32_t>(parsed->number_or("tid", 0.0));
    e.type = type_from_ph(parsed->string_or("ph", "i"));
    e.cat = cat_from_string(parsed->string_or("cat", "system"));
    e.value = parsed->number_or("value", 0.0);
    const auto [it, inserted] = ids.emplace(
        name->string, static_cast<std::uint32_t>(out.names.size()));
    if (inserted) out.names.push_back(name->string);
    e.name_id = it->second;
    out.events.push_back(e);
  }
  return saw_any;
}

bool jsonl_to_perfetto(const std::string& jsonl_path,
                       const std::string& out_path) {
  Journal journal;
  if (!read_jsonl_journal(jsonl_path, journal)) return false;
  return write_perfetto_file(journal, out_path);
}

}  // namespace fsda::obs
