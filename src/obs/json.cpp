#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace fsda::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_string(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------------------
// Parsing

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type == Type::Number) ? v->number : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type == Type::String) ? v->string
                                                   : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::String;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::Bool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.type = JsonValue::Type::Bool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.type = JsonValue::Type::Null;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Object;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) return false;
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Array;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Encode as UTF-8 (surrogate pairs are passed through as two
          // 3-byte sequences; our emitters only escape control chars).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_) return false;
    out.type = JsonValue::Type::Number;
    out.number = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace fsda::obs
