#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace fsda::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_string(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }

}  // namespace fsda::obs
