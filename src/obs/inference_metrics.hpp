// fsda::obs -- metric handles for the packed serving path.
//
// The InferenceSession (core/inference_session.hpp) reports through these
// three instruments; they live in the global registry and are exported by
// the existing Prometheus/JSON exporters like every other metric.  Grouped
// here so the session, the benchmarks, and the tests agree on names.
#pragma once

#include "obs/metrics.hpp"

namespace fsda::obs {

/// Lazily-registered handles; references stay valid for process lifetime
/// (the registry is leaked by design, see metrics.hpp).
struct InferenceMetrics {
  Counter& samples_total;
  HdrHistogram& batch_latency_ms;
  Gauge& samples_per_second;

  static InferenceMetrics& global() {
    static InferenceMetrics m{
        MetricsRegistry::global().counter(
            "inference.samples_total",
            "samples served through the packed inference session"),
        MetricsRegistry::global().hdr(
            "inference.batch_latency_ms", HdrOptions{},
            "inference session batch latency (ms), log-linear quantile "
            "histogram"),
        MetricsRegistry::global().gauge(
            "inference.samples_per_second",
            "throughput of the most recent inference session batch")};
    return m;
  }
};

}  // namespace fsda::obs
