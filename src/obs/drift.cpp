#include "obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace fsda::obs {

std::size_t DriftMonitor::bin_of(double v) const {
  if (v < options_.lo) return 0;
  if (v >= options_.hi) return options_.bins + 1;
  const double width = (options_.hi - options_.lo) /
                       static_cast<double>(options_.bins);
  const auto b = static_cast<std::size_t>((v - options_.lo) / width);
  return 1 + std::min(b, options_.bins - 1);
}

void DriftMonitor::fit(la::ConstMatrixView reference,
                       const std::vector<std::size_t>& columns,
                       DriftOptions options) {
  FSDA_CHECK_MSG(options.bins >= 2, "need at least two PSI bins");
  FSDA_CHECK_MSG(options.hi > options.lo, "empty PSI range");
  FSDA_CHECK_MSG(reference.rows() > 0, "empty PSI reference");
  options_ = options;
  columns_ = columns;
  ref_props_.assign(columns_.size(),
                    std::vector<double>(options_.bins + 2, 0.0));
  for (std::size_t k = 0; k < columns_.size(); ++k) {
    const std::size_t c = columns_[k];
    FSDA_CHECK_MSG(c < reference.cols(),
                   "PSI column " << c << " out of " << reference.cols());
    double n = 0.0;
    for (std::size_t r = 0; r < reference.rows(); ++r) {
      const double v = reference(r, c);
      if (!std::isfinite(v)) continue;
      ref_props_[k][bin_of(v)] += 1.0;
      n += 1.0;
    }
    if (n == 0.0) {
      ref_props_.clear();  // leave the monitor unfitted, not half-fitted
      throw common::NumericError(
          "DriftMonitor::fit: reference column " + std::to_string(c) +
          " has no finite values; cannot build a PSI reference");
    }
    // Laplace smoothing: every bin keeps at least a min_proportion-sized
    // pseudo-count, so a batch landing in an empty reference bin scores a
    // large-but-finite PSI contribution instead of relying solely on the
    // psi()-time floor.
    const double alpha = options_.min_proportion;
    const double denom =
        1.0 + alpha * static_cast<double>(ref_props_[k].size());
    for (double& p : ref_props_[k]) p = (p / n + alpha) / denom;
  }
}

std::vector<double> DriftMonitor::psi(la::ConstMatrixView batch) const {
  FSDA_CHECK_MSG(fitted(), "psi before fit");
  std::vector<double> out(columns_.size(), 0.0);
  std::vector<double> props(options_.bins + 2);
  for (std::size_t k = 0; k < columns_.size(); ++k) {
    const std::size_t c = columns_[k];
    FSDA_CHECK_MSG(c < batch.cols(),
                   "PSI column " << c << " out of " << batch.cols());
    std::fill(props.begin(), props.end(), 0.0);
    double n = 0.0;
    for (std::size_t r = 0; r < batch.rows(); ++r) {
      const double v = batch(r, c);
      if (!std::isfinite(v)) continue;
      props[bin_of(v)] += 1.0;
      n += 1.0;
    }
    if (n == 0.0) continue;  // all-quarantined column: report 0, not NaN
    double value = 0.0;
    for (std::size_t b = 0; b < props.size(); ++b) {
      const double q = std::max(props[b] / n, options_.min_proportion);
      const double p = std::max(ref_props_[k][b], options_.min_proportion);
      value += (q - p) * std::log(q / p);
    }
    out[k] = value;
  }
  return out;
}

std::vector<double> DriftMonitor::ks(la::ConstMatrixView batch) const {
  FSDA_CHECK_MSG(fitted(), "ks before fit");
  std::vector<double> out(columns_.size(), 0.0);
  std::vector<double> props(options_.bins + 2);
  for (std::size_t k = 0; k < columns_.size(); ++k) {
    const std::size_t c = columns_[k];
    FSDA_CHECK_MSG(c < batch.cols(),
                   "KS column " << c << " out of " << batch.cols());
    std::fill(props.begin(), props.end(), 0.0);
    double n = 0.0;
    for (std::size_t r = 0; r < batch.rows(); ++r) {
      const double v = batch(r, c);
      if (!std::isfinite(v)) continue;
      props[bin_of(v)] += 1.0;
      n += 1.0;
    }
    if (n == 0.0) continue;  // all-quarantined column: report 0, not NaN
    double cdf_batch = 0.0;
    double cdf_ref = 0.0;
    double gap = 0.0;
    for (std::size_t b = 0; b < props.size(); ++b) {
      cdf_batch += props[b] / n;
      cdf_ref += ref_props_[k][b];
      gap = std::max(gap, std::abs(cdf_batch - cdf_ref));
    }
    out[k] = std::min(gap, 1.0);
  }
  return out;
}

}  // namespace fsda::obs
