// fsda::obs -- snapshot export: one JSON object per flush, written as a
// JSON-lines stream so a collector (or a test) can tail the file.
//
// Snapshot layout:
//   {"ts_unix_ms": ..., "metrics": {...}, "trace": {...}, <extra fields>}
//
// `extra` carries caller-supplied raw JSON values (already serialized),
// e.g. {"health", pipeline.health().to_json()}.  The trace subtree is
// included only when the tracer is enabled.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fsda::obs {

/// Caller-supplied (key, raw-JSON-value) pairs appended to the snapshot.
using ExtraFields = std::vector<std::pair<std::string, std::string>>;

/// Serializes the global registry (+ tracer when enabled) into one JSON
/// object string.
[[nodiscard]] std::string build_snapshot_json(const ExtraFields& extra = {});

/// Appends JSON-lines snapshots of the global registry to a file.
class SnapshotSink {
 public:
  explicit SnapshotSink(std::string path) : path_(std::move(path)) {}

  /// Appends one snapshot line; false on I/O failure (never throws --
  /// telemetry export must not take the serving path down).
  bool flush(const ExtraFields& extra = {}) const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace fsda::obs
