// fsda::obs -- inference-time drift telemetry.
//
// The pipeline's scaler and feature partition are fitted on source data
// only, so drift shows up at inference as target batches whose per-feature
// distributions move away from the cached scaled-source reference.  The
// Population Stability Index over the variant block is the per-feature
// signal (Eastwood et al. frame measurement shift as exactly this kind of
// progressively monitorable quantity; the variant/invariant split of
// Wu & Chen tells us *which* features are worth the gauges):
//
//   PSI(p, q) = sum_b (p_b - q_b) * ln(p_b / q_b)
//
// over fixed bins spanning the scaled envelope, with underflow/overflow
// bins and epsilon-floored proportions.  Rules of thumb: < 0.1 stable,
// 0.1-0.25 moderate shift, > 0.25 action needed.
//
// DriftMonitor is deliberately matrix-library-light: it reads element
// views only (no owning la::Matrix operations), so fsda_obs stays
// link-independent of fsda_la.
#pragma once

#include <cstddef>
#include <vector>

#include "la/view.hpp"

namespace fsda::obs {

struct DriftOptions {
  /// Interior bins over [lo, hi]; two outlier bins are added outside.
  std::size_t bins = 16;
  /// Scaled-feature envelope; the default covers [-1, 1] plus the
  /// pipeline's clamp margin.
  double lo = -1.5;
  double hi = 1.5;
  /// Floor applied to bin proportions so empty bins cannot blow up the log.
  double min_proportion = 1e-4;
};

/// Caches per-column reference histograms of a (scaled) source matrix and
/// scores later batches against them with PSI.
class DriftMonitor {
 public:
  /// Builds reference proportions for the listed columns of `reference`.
  /// Proportions are Laplace-smoothed with `min_proportion` pseudo-counts so
  /// empty reference bins stay strictly positive (finite PSI even against a
  /// batch concentrated where the reference is empty).  Throws NumericError
  /// when a monitored column has no finite reference value at all -- an
  /// all-NaN column would otherwise produce an all-zero reference that
  /// silently scores every batch as maximally drifted.
  void fit(la::ConstMatrixView reference,
           const std::vector<std::size_t>& columns, DriftOptions options = {});

  [[nodiscard]] bool fitted() const { return !ref_props_.empty(); }
  [[nodiscard]] const std::vector<std::size_t>& columns() const {
    return columns_;
  }
  [[nodiscard]] const DriftOptions& options() const { return options_; }

  /// PSI of each monitored column of `batch` (full-width matrix; the
  /// monitor indexes its own columns) against the reference, in
  /// columns() order.  Non-finite cells are ignored.
  [[nodiscard]] std::vector<double> psi(la::ConstMatrixView batch) const;

  /// Binned two-sample Kolmogorov-Smirnov statistic per monitored column:
  /// the maximum CDF gap between `batch` and the reference over the PSI
  /// bins, in [0, 1].  Complements PSI in the streaming drift detector --
  /// KS responds to location shifts that spread mass across adjacent bins
  /// before any single bin's proportion moves enough to register on PSI.
  [[nodiscard]] std::vector<double> ks(la::ConstMatrixView batch) const;

 private:
  /// Bin index of value v: 0 = underflow, 1..bins = interior, bins+1 = over.
  [[nodiscard]] std::size_t bin_of(double v) const;

  DriftOptions options_;
  std::vector<std::size_t> columns_;
  /// Per monitored column: bins + 2 reference proportions.
  std::vector<std::vector<double>> ref_props_;
};

}  // namespace fsda::obs
