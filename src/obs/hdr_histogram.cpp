#include "obs/hdr_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace fsda::obs {

HdrHistogram::HdrHistogram(HdrOptions options) : options_(options) {
  FSDA_CHECK_MSG(options_.min_value > 0.0 &&
                     options_.max_value > options_.min_value,
                 "HdrHistogram needs 0 < min_value < max_value");
  FSDA_CHECK_MSG(options_.sub_bucket_bits >= 1 &&
                     options_.sub_bucket_bits <= 12,
                 "sub_bucket_bits must be in [1, 12]");
  sub_count_ = std::size_t{1} << options_.sub_bucket_bits;
  max_ratio_ = options_.max_value / options_.min_value;
  num_exponents_ =
      static_cast<std::size_t>(std::floor(std::log2(max_ratio_))) + 1;
  num_buckets_ = num_exponents_ * sub_count_;
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_buckets_);
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sums_ = std::make_unique<std::array<SumCell, detail::kShards>>();
  observed_min_ = std::make_unique<std::atomic<double>>(
      std::numeric_limits<double>::infinity());
  observed_max_ = std::make_unique<std::atomic<double>>(
      -std::numeric_limits<double>::infinity());
}

std::size_t HdrHistogram::index_for(double v) const noexcept {
  if (!std::isfinite(v) || v < options_.min_value) return 0;
  double x = v / options_.min_value;
  if (x > max_ratio_) x = max_ratio_;
  int bin_exp = 0;
  (void)std::frexp(x, &bin_exp);  // x = frac * 2^bin_exp, frac in [0.5, 1)
  const int exp2 = bin_exp - 1;   // floor(log2(x)), x >= 1 so exp2 >= 0
  const double base = std::ldexp(1.0, exp2);
  auto sub = static_cast<std::size_t>((x / base - 1.0) *
                                      static_cast<double>(sub_count_));
  if (sub >= sub_count_) sub = sub_count_ - 1;
  std::size_t idx = static_cast<std::size_t>(exp2) * sub_count_ + sub;
  if (idx >= num_buckets_) idx = num_buckets_ - 1;
  return idx;
}

double HdrHistogram::bucket_lower(std::size_t idx) const noexcept {
  const std::size_t exp2 = idx / sub_count_;
  const std::size_t sub = idx % sub_count_;
  const double base = std::ldexp(1.0, static_cast<int>(exp2));
  return options_.min_value * base *
         (1.0 + static_cast<double>(sub) / static_cast<double>(sub_count_));
}

double HdrHistogram::bucket_upper(std::size_t idx) const noexcept {
  const std::size_t exp2 = idx / sub_count_;
  const std::size_t sub = idx % sub_count_;
  const double base = std::ldexp(1.0, static_cast<int>(exp2));
  return options_.min_value * base *
         (1.0 +
          static_cast<double>(sub + 1) / static_cast<double>(sub_count_));
}

void HdrHistogram::record_always(double v) noexcept {
  buckets_[index_for(v)].fetch_add(1, std::memory_order_relaxed);
  (*sums_)[detail::shard_index()].sum.fetch_add(std::isfinite(v) ? v : 0.0,
                                                std::memory_order_relaxed);
  if (std::isfinite(v)) {
    double seen = observed_min_->load(std::memory_order_relaxed);
    while (v < seen && !observed_min_->compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
    seen = observed_max_->load(std::memory_order_relaxed);
    while (v > seen && !observed_max_->compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
}

std::uint64_t HdrHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double HdrHistogram::sum() const noexcept {
  double total = 0.0;
  for (const SumCell& c : *sums_) {
    total += c.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double HdrHistogram::min() const noexcept {
  const double v = observed_min_->load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double HdrHistogram::max() const noexcept {
  const double v = observed_max_->load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double HdrHistogram::value_at_quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return 0.5 * (bucket_lower(i) + bucket_upper(i));
    }
  }
  return bucket_upper(num_buckets_ - 1);
}

void HdrHistogram::merge_from(const HdrHistogram& other) noexcept {
  if (other.num_buckets_ != num_buckets_ || other.sub_count_ != sub_count_ ||
      other.options_.min_value != options_.min_value) {
    return;  // incompatible layouts never corrupt (callers pass twins)
  }
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  (*sums_)[0].sum.fetch_add(other.sum(), std::memory_order_relaxed);
  const double omin = other.observed_min_->load(std::memory_order_relaxed);
  const double omax = other.observed_max_->load(std::memory_order_relaxed);
  double seen = observed_min_->load(std::memory_order_relaxed);
  while (omin < seen && !observed_min_->compare_exchange_weak(
                            seen, omin, std::memory_order_relaxed)) {
  }
  seen = observed_max_->load(std::memory_order_relaxed);
  while (omax > seen && !observed_max_->compare_exchange_weak(
                            seen, omax, std::memory_order_relaxed)) {
  }
}

void HdrHistogram::reset() noexcept {
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  for (SumCell& c : *sums_) c.sum.store(0.0, std::memory_order_relaxed);
  observed_min_->store(std::numeric_limits<double>::infinity(),
                       std::memory_order_relaxed);
  observed_max_->store(-std::numeric_limits<double>::infinity(),
                       std::memory_order_relaxed);
}

std::vector<HdrHistogram::Bucket> HdrHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.push_back({bucket_lower(i), bucket_upper(i), n});
  }
  return out;
}

// ---------------------------------------------------------------------------
// WindowedHdr

WindowedHdr::WindowedHdr(std::size_t epochs, HdrOptions options)
    : options_(options) {
  FSDA_CHECK_MSG(epochs >= 1, "WindowedHdr needs at least one epoch");
  epochs_.reserve(epochs);
  for (std::size_t i = 0; i < epochs; ++i) {
    epochs_.push_back(std::make_unique<HdrHistogram>(options_));
  }
}

void WindowedHdr::rotate() noexcept {
  const std::size_t next =
      (current_.load(std::memory_order_relaxed) + 1) % epochs_.size();
  epochs_[next]->reset();
  current_.store(next, std::memory_order_relaxed);
}

HdrHistogram WindowedHdr::merged() const {
  HdrHistogram out(options_);
  for (const auto& epoch : epochs_) out.merge_from(*epoch);
  return out;
}

}  // namespace fsda::obs
