#include "obs/export.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fsda::obs {

std::string build_snapshot_json(const ExtraFields& extra) {
  const auto now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::ostringstream os;
  os << "{\"ts_unix_ms\":" << now_ms
     << ",\"metrics\":" << MetricsRegistry::global().snapshot_json();
  if (Tracer::global().enabled()) {
    os << ",\"trace\":" << Tracer::global().to_json();
  }
  for (const auto& [key, value] : extra) {
    os << "," << json_string(key) << ":" << value;
  }
  os << "}";
  return os.str();
}

bool SnapshotSink::flush(const ExtraFields& extra) const {
  std::ofstream out(path_, std::ios::app);
  if (!out) return false;
  out << build_snapshot_json(extra) << "\n";
  return static_cast<bool>(out);
}

}  // namespace fsda::obs
