#include "obs/slo.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace fsda::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SloTracker::SloTracker(SloOptions options) { reconfigure(options); }

void SloTracker::reconfigure(const SloOptions& options) {
  FSDA_CHECK_MSG(options.latency_target_ms > 0.0,
                 "SLO latency target must be positive");
  FSDA_CHECK_MSG(options.objective > 0.0 && options.objective < 1.0,
                 "SLO objective must be in (0, 1)");
  FSDA_CHECK_MSG(options.window_epochs >= 1, "SLO window needs >= 1 epoch");
  FSDA_CHECK_MSG(options.epoch_seconds > 0.0,
                 "SLO epoch duration must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  epochs_.clear();
  epochs_.resize(options_.window_epochs);
  for (Epoch& e : epochs_) {
    e.hist = std::make_unique<HdrHistogram>(options_.hdr);
  }
  current_ = 0;
  epoch_started_s_ = steady_seconds();
  if (!options_.gauge_prefix.empty()) {
    auto& registry = MetricsRegistry::global();
    p_objective_gauge_ = &registry.gauge(
        options_.gauge_prefix + ".p_objective_ms",
        "window latency at the SLO objective quantile (ms)");
    burn_gauge_ = &registry.gauge(
        options_.gauge_prefix + ".burn_rate",
        "error-budget burn rate over the SLO window (1.0 = at budget)");
  } else {
    p_objective_gauge_ = nullptr;
    burn_gauge_ = nullptr;
  }
}

void SloTracker::advance_clock_locked() {
  const double now = steady_seconds();
  // Rotate once per elapsed epoch, but never more than a full window --
  // after a long idle gap the whole window is stale either way.
  std::size_t rotations = 0;
  while (now - epoch_started_s_ >= options_.epoch_seconds &&
         rotations < epochs_.size()) {
    rotate_locked();
    epoch_started_s_ += options_.epoch_seconds;
    ++rotations;
  }
  if (now - epoch_started_s_ >= options_.epoch_seconds) {
    epoch_started_s_ = now;  // snap after the full-window catch-up
  }
}

void SloTracker::rotate_locked() {
  current_ = (current_ + 1) % epochs_.size();
  Epoch& e = epochs_[current_];
  e.hist->reset();
  e.total = 0;
  e.bad = 0;
  publish_gauges_locked();
}

void SloTracker::publish_gauges_locked() {
  if (p_objective_gauge_ == nullptr) return;
  HdrHistogram merged(options_.hdr);
  std::uint64_t total = 0, bad = 0;
  for (const Epoch& e : epochs_) {
    merged.merge_from(*e.hist);
    total += e.total;
    bad += e.bad;
  }
  p_objective_gauge_->set(merged.value_at_quantile(options_.objective));
  const double allowed = 1.0 - options_.objective;
  burn_gauge_->set(total == 0 ? 0.0
                              : (static_cast<double>(bad) /
                                 static_cast<double>(total)) /
                                    allowed);
}

void SloTracker::record(double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  advance_clock_locked();
  Epoch& e = epochs_[current_];
  e.hist->record_always(latency_ms);
  ++e.total;
  if (!(latency_ms <= options_.latency_target_ms)) ++e.bad;
}

void SloTracker::rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  rotate_locked();
  epoch_started_s_ = steady_seconds();
}

double SloTracker::window_quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  HdrHistogram merged(options_.hdr);
  for (const Epoch& e : epochs_) merged.merge_from(*e.hist);
  return merged.value_at_quantile(q);
}

double SloTracker::window_p_objective() const {
  return window_quantile(options_.objective);
}

double SloTracker::error_budget_burn_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0, bad = 0;
  for (const Epoch& e : epochs_) {
    total += e.total;
    bad += e.bad;
  }
  if (total == 0) return 0.0;
  return (static_cast<double>(bad) / static_cast<double>(total)) /
         (1.0 - options_.objective);
}

bool SloTracker::breaching() const {
  return window_p_objective() > options_.latency_target_ms;
}

std::uint64_t SloTracker::window_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Epoch& e : epochs_) total += e.total;
  return total;
}

std::uint64_t SloTracker::window_bad() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t bad = 0;
  for (const Epoch& e : epochs_) bad += e.bad;
  return bad;
}

SloTracker& serving_slo() {
  static SloTracker* tracker = [] {
    SloOptions o;
    o.gauge_prefix = "slo.predict";
    return new SloTracker(o);
  }();
  return *tracker;
}

void configure_serving_slo(const SloOptions& options) {
  serving_slo().reconfigure(options);
}

}  // namespace fsda::obs
