// fsda::obs -- minimal JSON emission and parsing helpers.
//
// Emission is the common path: the repository writes snapshots for
// external collectors.  Numbers are rendered with enough precision to
// round-trip doubles; non-finite doubles become null (JSON has no NaN).
//
// Parsing exists for the CLI `obs` subcommand, which re-reads the
// snapshots and journal dumps this process (or a previous run) wrote.
// It is a strict recursive-descent parser over the JSON subset we emit --
// no comments, no trailing commas -- returning std::nullopt on any error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fsda::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

/// `"s"` with escaping.
[[nodiscard]] std::string json_string(const std::string& s);

/// Shortest-round-trip rendering of a double; null when non-finite.
[[nodiscard]] std::string json_number(double v);

[[nodiscard]] std::string json_number(std::uint64_t v);

/// One parsed JSON value.  Objects preserve key order (snapshots diff
/// deterministically); lookups are linear, fine at snapshot sizes.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return type == Type::Object; }
  [[nodiscard]] bool is_array() const { return type == Type::Array; }
  [[nodiscard]] bool is_number() const { return type == Type::Number; }
  [[nodiscard]] bool is_string() const { return type == Type::String; }

  /// Object member by key, nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Numeric member shortcut: find(key)->number, or `fallback`.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  /// String member shortcut: find(key)->string, or `fallback`.
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
};

/// Parses one complete JSON document; nullopt on any syntax error or
/// trailing garbage.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace fsda::obs
