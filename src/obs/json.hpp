// fsda::obs -- minimal JSON emission helpers shared by the exporters.
//
// Emission only: the repository never parses JSON, it writes snapshots for
// external collectors.  Numbers are rendered with enough precision to
// round-trip doubles; non-finite doubles become null (JSON has no NaN).
#pragma once

#include <cstdint>
#include <string>

namespace fsda::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

/// `"s"` with escaping.
[[nodiscard]] std::string json_string(const std::string& s);

/// Shortest-round-trip rendering of a double; null when non-finite.
[[nodiscard]] std::string json_number(double v);

[[nodiscard]] std::string json_number(std::uint64_t v);

}  // namespace fsda::obs
