// fsda::obs -- scoped trace spans building a per-run timing tree.
//
//   void FsGanPipeline::train(...) {
//     FSDA_SPAN("pipeline.train");
//     ...
//     { FSDA_SPAN("pipeline.classifier_fit"); classifier_->fit(...); }
//   }
//
// Spans nest via a thread-local cursor: a span opened while another is
// active on the same thread becomes (or merges into) a child node keyed by
// name, accumulating wall seconds and an invocation count.  Spans opened
// on ThreadPool workers attach under the tracer root (worker tasks have no
// portable way to know their logical parent), which is why instrumentation
// stays at stage granularity rather than inside parallel_for bodies.
//
// Tracing is OFF by default.  A disabled span is one relaxed atomic load
// in the constructor and a null check in the destructor -- no clock reads,
// no locking -- so permanently-compiled-in spans cost nothing measurable.
// Enabled spans take one short mutex section at open and one at close;
// they are placed on paths that run at most a few times per second.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fsda::obs {

/// Plain-value copy of the span tree for tests and exporters.
struct SpanSnapshot {
  std::string name;
  double seconds = 0.0;
  std::uint64_t count = 0;
  std::vector<SpanSnapshot> children;

  /// First direct child with this name, or nullptr.
  [[nodiscard]] const SpanSnapshot* child(const std::string& child_name) const;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer used by FSDA_SPAN (never destroyed).
  static Tracer& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Zeroes all recorded stats.  Node storage is retained so in-flight
  /// guards stay valid; nodes with no post-reset activity are omitted
  /// from snapshots and exports.
  void reset();

  /// Copy of the tree; the root is a synthetic node named "root".
  [[nodiscard]] SpanSnapshot snapshot() const;

  /// Indented human-readable tree (seconds, counts).
  [[nodiscard]] std::string to_string() const;

  /// {"name":...,"seconds":...,"count":...,"children":[...]} of the root.
  [[nodiscard]] std::string to_json() const;

 private:
  friend class SpanGuard;
  struct Node {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
  };

  Node* open(const char* name);
  void close(Node* node, double seconds);

  /// Innermost open span on this thread (into the global tracer's tree).
  static thread_local Node* t_current_;

  mutable std::mutex mutex_;
  Node root_{"root", 0.0, 0, nullptr, {}};
  std::atomic<bool> enabled_{false};
};

/// RAII span handle; records into Tracer::global() on destruction.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard();

 private:
  Tracer::Node* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fsda::obs

#define FSDA_SPAN_CONCAT_INNER(a, b) a##b
#define FSDA_SPAN_CONCAT(a, b) FSDA_SPAN_CONCAT_INNER(a, b)
/// Opens a scoped trace span named `name` (a string literal).
#define FSDA_SPAN(name) \
  ::fsda::obs::SpanGuard FSDA_SPAN_CONCAT(fsda_span_, __LINE__)(name)
