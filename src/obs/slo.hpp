// fsda::obs -- SLO tracking over sliding latency windows (DESIGN.md §14).
//
// An SloTracker watches one latency stream against an objective of the
// form "<objective> of requests complete within <latency_target_ms>"
// (e.g. 99% under 25 ms) over a sliding window of fixed-duration epochs.
// Per epoch it keeps an HdrHistogram plus good/bad counts; the window
// answers two questions the serving daemon's admission control (ROADMAP
// item 1) consumes:
//
//   window_quantile(objective)  the observed p99 (etc.) over the window,
//                               within the HDR relative-error bound;
//   error_budget_burn_rate()    (bad fraction) / (1 - objective): 1.0
//                               burns the budget exactly as fast as the
//                               SLO allows, >1 means the SLO will be
//                               violated if the window's behaviour holds.
//
// record() ALWAYS applies, like Gauge::set -- an SLO signal that goes
// blind when telemetry is off cannot gate admission.  It is meant for
// once-per-batch call rates: it takes a short mutex and one steady-clock
// read (epoch rotation is driven by that clock, so idle periods rotate
// lazily on the next record/query).  When gauge names are configured, the
// window p-objective and burn rate are published to the metrics registry
// on every rotation.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.hpp"

namespace fsda::obs {

class Gauge;

struct SloOptions {
  /// Latency bound the objective applies to.
  double latency_target_ms = 25.0;
  /// Required fraction of requests under the bound (0.99 -> "p99 SLO").
  double objective = 0.99;
  /// Wall-clock length of one window epoch.
  double epoch_seconds = 10.0;
  /// Epochs per sliding window (window = epoch_seconds * window_epochs).
  std::size_t window_epochs = 6;
  /// Layout of the per-epoch latency histograms.
  HdrOptions hdr;
  /// When non-empty, `<prefix>.p_objective_ms` and `<prefix>.burn_rate`
  /// gauges are updated on every epoch rotation.
  std::string gauge_prefix;
};

class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one request latency (always applies; see file comment).
  void record(double latency_ms);

  /// Forces an epoch rotation (tests; production rotation is clock-driven).
  void rotate();

  /// Replaces the configuration and clears the window.
  void reconfigure(const SloOptions& options);

  /// Latency at quantile `q` over the sliding window (HDR bound applies).
  [[nodiscard]] double window_quantile(double q) const;
  /// Convenience: window_quantile(objective).
  [[nodiscard]] double window_p_objective() const;
  /// (bad fraction over window) / (1 - objective); 0 when the window is
  /// empty.  1.0 = burning the error budget exactly at the allowed rate.
  [[nodiscard]] double error_budget_burn_rate() const;
  /// True when the window's p-objective exceeds the latency target.
  [[nodiscard]] bool breaching() const;

  [[nodiscard]] std::uint64_t window_total() const;
  [[nodiscard]] std::uint64_t window_bad() const;
  [[nodiscard]] const SloOptions& options() const { return options_; }

 private:
  struct Epoch {
    std::unique_ptr<HdrHistogram> hist;
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };

  void rotate_locked();
  void advance_clock_locked();
  void publish_gauges_locked();

  SloOptions options_;
  mutable std::mutex mu_;
  std::vector<Epoch> epochs_;
  std::size_t current_ = 0;
  double epoch_started_s_ = 0.0;  // steady seconds (monotonic)
  Gauge* p_objective_gauge_ = nullptr;
  Gauge* burn_gauge_ = nullptr;
};

/// Process-wide tracker for the serving path (FsGanPipeline::predict_proba
/// records every batch's latency here).  Leaked singleton.
[[nodiscard]] SloTracker& serving_slo();

/// Replaces the serving tracker's configuration (drops its window).  Call
/// before serving traffic; the CLI and benches use it to set the target.
void configure_serving_slo(const SloOptions& options);

}  // namespace fsda::obs
