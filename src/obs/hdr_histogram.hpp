// fsda::obs -- HDR-style log-linear latency histograms (DESIGN.md §14).
//
// The fixed-bucket obs::Histogram answers "how many under 10 ms"; serving
// and training hot paths need "what is p99.9" with a *guaranteed* error
// bound, mergeable across shards and time windows.  An HdrHistogram covers
// [min_value, max_value] with log-linear buckets: each power-of-two range
// is split into 2^sub_bucket_bits equal-width sub-buckets, so any recorded
// value lands in a bucket whose width is at most value / 2^sub_bucket_bits
// and a quantile query answering with the bucket midpoint is within
//
//   relative error <= 1 / 2^(sub_bucket_bits + 1)
//
// of the exact order statistic (1.56% at the default 5 bits; tested
// against a sorted-sample oracle in obs_journal_test.cpp).  Values outside
// [min_value, max_value] are clamped into the edge buckets (the exact
// observed min/max are tracked separately), so the bound holds for values
// inside the configured range.
//
// record() is wait-free -- one relaxed fetch_add on the bucket plus one on
// a sharded sum cell -- and gated by the same process-wide telemetry flag
// as Counter/Histogram, so counts are EXACT under concurrency and the
// disabled cost is one relaxed load.  Reads scan the bucket array; they
// are monotonic, not linearizable, which is all a quantile query needs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fsda::obs {

namespace detail {
// Shared with metrics.hpp (defined in metrics.cpp): the process-wide
// telemetry gate and the per-thread shard index.
extern std::atomic<bool> g_enabled;
inline constexpr std::size_t kShards = 16;
[[nodiscard]] std::size_t shard_index() noexcept;
}  // namespace detail

struct HdrOptions {
  /// Smallest distinguishable value (values below clamp into bucket 0).
  double min_value = 1e-3;
  /// Largest trackable value (values above clamp into the top bucket).
  double max_value = 1e7;
  /// Each power-of-two range is split into 2^sub_bucket_bits sub-buckets;
  /// 5 -> 32 sub-buckets -> quantiles within 1/64 ~ 1.6% relative error.
  unsigned sub_bucket_bits = 5;
};

class HdrHistogram {
 public:
  explicit HdrHistogram(HdrOptions options = {});

  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;
  HdrHistogram(HdrHistogram&&) = default;
  HdrHistogram& operator=(HdrHistogram&&) = default;

  /// Records one value; no-op when telemetry is disabled.  Wait-free.
  void record(double v) noexcept {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    record_always(v);
  }

  /// Records regardless of the telemetry gate (for always-on consumers
  /// like the SLO tracker, which must stay truthful like gauges do).
  void record_always(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  /// Exact smallest/largest recorded values (0 when empty).
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// The value at quantile `q` in [0, 1]: midpoint of the bucket holding
  /// the ceil(q * count)-th smallest recorded value.  0 when empty.
  [[nodiscard]] double value_at_quantile(double q) const noexcept;

  /// Documented bound: |value_at_quantile(q) - exact| <= bound * exact for
  /// recorded values inside [min_value, max_value].
  [[nodiscard]] double relative_error_bound() const noexcept {
    return 1.0 / static_cast<double>(2 * sub_count_);
  }

  /// Adds another histogram's counts into this one.  Requires identical
  /// options.  Safe against concurrent record() on either side (totals
  /// remain exact; the merge itself is not atomic as a whole).
  void merge_from(const HdrHistogram& other) noexcept;

  void reset() noexcept;

  struct Bucket {
    double lower = 0.0;
    double upper = 0.0;
    std::uint64_t count = 0;
  };
  /// Non-empty buckets, ascending (exporters, tests).
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  [[nodiscard]] const HdrOptions& options() const noexcept {
    return options_; }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return num_buckets_; }

 private:
  [[nodiscard]] std::size_t index_for(double v) const noexcept;
  [[nodiscard]] double bucket_lower(std::size_t idx) const noexcept;
  [[nodiscard]] double bucket_upper(std::size_t idx) const noexcept;

  HdrOptions options_;
  std::size_t sub_count_ = 0;    // 2^sub_bucket_bits
  std::size_t num_exponents_ = 0;
  std::size_t num_buckets_ = 0;
  double max_ratio_ = 0.0;       // max_value / min_value
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;

  struct alignas(64) SumCell {
    std::atomic<double> sum{0.0};
  };
  std::unique_ptr<std::array<SumCell, detail::kShards>> sums_;
  std::unique_ptr<std::atomic<double>> observed_min_;
  std::unique_ptr<std::atomic<double>> observed_max_;
};

/// Sliding-window aggregation: a ring of epoch histograms; record() lands
/// in the current epoch, rotate() retires the oldest, merged() folds the
/// whole window into one queryable histogram.  Records racing a rotate may
/// land in the adjacent epoch -- harmless for windowed quantiles.
class WindowedHdr {
 public:
  WindowedHdr(std::size_t epochs, HdrOptions options = {});

  void record(double v) noexcept {
    epochs_[current_.load(std::memory_order_relaxed)]->record(v);
  }
  void record_always(double v) noexcept {
    epochs_[current_.load(std::memory_order_relaxed)]->record_always(v);
  }

  /// Advances the window by one epoch, clearing the slot it moves into.
  void rotate() noexcept;

  /// Merge of every epoch still in the window.
  [[nodiscard]] HdrHistogram merged() const;

  [[nodiscard]] std::size_t epochs() const noexcept { return epochs_.size(); }
  [[nodiscard]] const HdrOptions& options() const noexcept {
    return options_; }

 private:
  HdrOptions options_;
  std::vector<std::unique_ptr<HdrHistogram>> epochs_;
  std::atomic<std::size_t> current_{0};
};

}  // namespace fsda::obs
