// fsda::obs -- process-wide metrics registry: counters, gauges, and
// fixed-bucket histograms.
//
// Hot-path increments must be safe inside ThreadPool workers and must not
// serialize them: Counter and Histogram spread their cells across
// cache-line-aligned shards updated with relaxed atomics, so an increment
// is a single wait-free fetch_add on the calling thread's shard.  Reads
// (value(), the exporters) sum the shards; they are monotonic but not a
// linearizable snapshot, which is all a telemetry scrape needs.
//
// Naming scheme (DESIGN.md §9): `<subsystem>.<metric>[_total|_seconds|_ms]`,
// e.g. `fs.ci_tests_total`, `cgan.epochs_total`, `predict.latency_ms`.
// A metric may carry one Prometheus-style label suffix in its name, e.g.
// `drift.psi{feature="17"}`; the registry treats the full string as the
// key and the text exposition splits it back into name + label.
//
// The global enabled flag gates Counter::inc and Histogram::observe (the
// hot paths).  Gauge::set always applies: gauges are cold-path stage
// summaries that double as accessors (e.g. reconstructor fit seconds), so
// they must stay truthful even with telemetry off.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.hpp"

namespace fsda::obs {

/// True when counter/histogram recording is active (default: off --
/// exporters, the CLI telemetry flags, and FSDA_METRICS_OUT turn it on).
[[nodiscard]] bool telemetry_enabled() noexcept;

/// Toggles counter/histogram recording process-wide.
void set_telemetry_enabled(bool on) noexcept;

// detail::g_enabled (the process-wide gate), detail::kShards, and
// detail::shard_index() are declared in hdr_histogram.hpp (included above)
// and defined in metrics.cpp.

/// Monotonic counter with sharded cells; inc() is wait-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kShards> cells_{};
};

/// Last-write-wins instantaneous value.  set()/add() apply regardless of
/// the enabled flag (see file comment).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges,
/// with an implicit +inf bucket appended.  observe() is two relaxed
/// fetch_adds (bucket count + sharded sum cell) after a linear bound scan.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last is +inf).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  struct alignas(64) SumCell {
    std::atomic<double> sum{0.0};
  };
  std::array<SumCell, detail::kShards> sums_{};
};

/// Name -> metric map with stable handles: counter()/gauge()/histogram()
/// find-or-create under a mutex and return a reference that stays valid
/// for the registry's lifetime, so call sites resolve once and increment
/// lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (never destroyed, so handles cached in
  /// long-lived threads stay valid through shutdown).
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = {});
  Gauge& gauge(const std::string& name, const std::string& help = {});
  /// `bounds` are consulted only on first registration.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = {});
  /// Log-linear quantile histogram (exact p50/p90/p99/p999 within the HDR
  /// relative-error bound).  `options` are consulted only on first
  /// registration.  Prefer this over histogram() on latency hot paths.
  HdrHistogram& hdr(const std::string& name, HdrOptions options = {},
                    const std::string& help = {});

  /// True when a metric of any type with this exact name exists.
  [[nodiscard]] bool has(const std::string& name) const;
  /// Gauge value by name; `fallback` when absent.
  [[nodiscard]] double gauge_value(const std::string& name,
                                   double fallback = 0.0) const;

  /// Prometheus-style text exposition (names sanitized, `fsda_` prefix).
  [[nodiscard]] std::string expose_text() const;
  /// One JSON object with "counters", "gauges", "histograms", and "hdr"
  /// sections (hdr entries carry count/sum/min/max/p50/p90/p99/p999).
  [[nodiscard]] std::string snapshot_json() const;

  /// Zeroes every registered metric (tests); registrations are kept.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<HdrHistogram>> hdrs_;
  std::map<std::string, std::string> help_;
};

/// Escapes a Prometheus label VALUE: backslash, double quote, and newline
/// become `\\`, `\"`, and `\n` per the exposition format.
[[nodiscard]] std::string escape_label_value(const std::string& value);

/// Builds a labeled metric key, escaping the label value:
/// metric_with_label("drift.psi", "feature", "17") ->
/// `drift.psi{feature="17"}`.  Use this instead of concatenating label
/// blocks by hand, so values containing `\`, `"`, or newlines stay valid.
[[nodiscard]] std::string metric_with_label(const std::string& base,
                                            const std::string& key,
                                            const std::string& value);

}  // namespace fsda::obs
