#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace fsda::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

std::size_t shard_index() noexcept {
  // One hash per thread, cached; threads spread across shards so two pool
  // workers rarely contend on the same cache line.
  thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return index;
}

}  // namespace detail

bool telemetry_enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_telemetry_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram.

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  FSDA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  sums_[detail::shard_index()].sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const SumCell& c : sums_) {
    total += c.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  for (SumCell& c : sums_) c.sum.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry.

MetricsRegistry& MetricsRegistry::global() {
  // Leaked singleton: pool workers and static handles may outlive any
  // destruction order the runtime would pick.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  FSDA_CHECK_MSG(!gauges_.count(name) && !histograms_.count(name) &&
                     !hdrs_.count(name),
                 "metric '" << name << "' already registered with another type");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  FSDA_CHECK_MSG(!counters_.count(name) && !histograms_.count(name) &&
                     !hdrs_.count(name),
                 "metric '" << name << "' already registered with another type");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  FSDA_CHECK_MSG(!counters_.count(name) && !gauges_.count(name) &&
                     !hdrs_.count(name),
                 "metric '" << name << "' already registered with another type");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

HdrHistogram& MetricsRegistry::hdr(const std::string& name, HdrOptions options,
                                   const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  FSDA_CHECK_MSG(!counters_.count(name) && !gauges_.count(name) &&
                     !histograms_.count(name),
                 "metric '" << name << "' already registered with another type");
  auto it = hdrs_.find(name);
  if (it == hdrs_.end()) {
    it = hdrs_.emplace(name, std::make_unique<HdrHistogram>(options)).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

bool MetricsRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         histograms_.count(name) != 0 || hdrs_.count(name) != 0;
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? fallback : it->second->value();
}

namespace {

/// Splits `drift.psi{feature="17"}` into ("drift.psi", `{feature="17"}`).
std::pair<std::string, std::string> split_label(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

/// Prometheus metric name: dots become underscores, `fsda_` prefix.
std::string prom_name(const std::string& base) {
  std::string out = "fsda_";
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Adds one `key="value"` pair to a (possibly empty) label block.
std::string with_extra_label(const std::string& label, const char* key,
                             const std::string& value) {
  if (label.empty()) {
    return std::string("{") + key + "=\"" + value + "\"}";
  }
  // `{a="b"}` -> `{a="b",key="value"}`
  std::string out = label.substr(0, label.size() - 1);
  out += ",";
  out += key;
  out += "=\"" + value + "\"}";
  return out;
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string metric_with_label(const std::string& base, const std::string& key,
                              const std::string& value) {
  return base + "{" + key + "=\"" + escape_label_value(value) + "\"}";
}

std::string MetricsRegistry::expose_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  const auto help_line = [&](const std::string& name, const char* type) {
    const auto [base, label] = split_label(name);
    (void)label;
    const auto h = help_.find(name);
    if (h != help_.end()) {
      os << "# HELP " << prom_name(base) << " " << h->second << "\n";
    }
    os << "# TYPE " << prom_name(base) << " " << type << "\n";
  };
  for (const auto& [name, c] : counters_) {
    help_line(name, "counter");
    const auto [base, label] = split_label(name);
    os << prom_name(base) << label << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    help_line(name, "gauge");
    const auto [base, label] = split_label(name);
    os << prom_name(base) << label << " " << json_number(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    help_line(name, "histogram");
    const auto [base, label] = split_label(name);
    (void)label;
    const std::string pname = prom_name(base);
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      cumulative += counts[b];
      const std::string le =
          b < h->bounds().size() ? json_number(h->bounds()[b]) : "+Inf";
      os << pname << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << pname << "_sum " << json_number(h->sum()) << "\n";
    os << pname << "_count " << cumulative << "\n";
  }
  for (const auto& [name, h] : hdrs_) {
    help_line(name, "summary");
    const auto [base, label] = split_label(name);
    const std::string pname = prom_name(base);
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      os << pname << with_extra_label(label, "quantile", json_number(q))
         << " " << json_number(h->value_at_quantile(q)) << "\n";
    }
    os << pname << "_sum" << label << " " << json_number(h->sum()) << "\n";
    os << pname << "_count" << label << " " << h->count() << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << json_string(name) << ":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << json_string(name) << ":"
       << json_number(g->value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << json_string(name) << ":{\"bounds\":[";
    for (std::size_t b = 0; b < h->bounds().size(); ++b) {
      os << (b ? "," : "") << json_number(h->bounds()[b]);
    }
    os << "],\"counts\":[";
    const auto counts = h->bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      os << (b ? "," : "") << counts[b];
    }
    os << "],\"count\":" << h->count()
       << ",\"sum\":" << json_number(h->sum()) << "}";
    first = false;
  }
  os << "},\"hdr\":{";
  first = true;
  for (const auto& [name, h] : hdrs_) {
    os << (first ? "" : ",") << json_string(name) << ":{\"count\":"
       << h->count() << ",\"sum\":" << json_number(h->sum())
       << ",\"min\":" << json_number(h->min())
       << ",\"max\":" << json_number(h->max())
       << ",\"p50\":" << json_number(h->value_at_quantile(0.5))
       << ",\"p90\":" << json_number(h->value_at_quantile(0.9))
       << ",\"p99\":" << json_number(h->value_at_quantile(0.99))
       << ",\"p999\":" << json_number(h->value_at_quantile(0.999))
       << ",\"relative_error_bound\":"
       << json_number(h->relative_error_bound()) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, h] : hdrs_) h->reset();
}

}  // namespace fsda::obs
