#include "obs/journal.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/perfetto_export.hpp"

namespace fsda::obs {

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::Begin: return "B";
    case EventType::End: return "E";
    case EventType::Instant: return "i";
    case EventType::Counter: return "C";
  }
  return "?";
}

const char* to_string(EventCategory c) noexcept {
  switch (c) {
    case EventCategory::Serving: return "serving";
    case EventCategory::Training: return "training";
    case EventCategory::Drift: return "drift";
    case EventCategory::Causal: return "causal";
    case EventCategory::System: return "system";
  }
  return "?";
}

namespace detail {

std::atomic<bool> g_recorder_enabled{false};

ThreadRingRef& thread_ring() {
  thread_local ThreadRingRef ref;
  if (ref.ring == nullptr) {
    FlightRecorder::global().register_thread(ref);
  }
  return ref;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// EventRing

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventRing::EventRing(std::size_t capacity)
    : capacity_(round_up_pow2(capacity)), mask_(capacity_ - 1) {
  slots_ = std::make_unique<Event[]>(capacity_);
}

std::size_t EventRing::drain(std::vector<Event>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t n = static_cast<std::size_t>(head - tail);
  out.reserve(out.size() + n);
  for (; tail != head; ++tail) {
    out.push_back(slots_[tail & mask_]);
  }
  tail_.store(tail, std::memory_order_release);
  return n;
}

std::size_t EventRing::size() const noexcept {
  return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                  tail_.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------------
// Journal

const std::string& Journal::name(std::uint32_t id) const {
  static const std::string unknown = "?";
  return id < names.size() ? names[id] : unknown;
}

// ---------------------------------------------------------------------------
// FlightRecorder

FlightRecorder::FlightRecorder()
    : epoch_steady_(std::chrono::steady_clock::now()),
      epoch_unix_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count())) {}

FlightRecorder& FlightRecorder::global() {
  // Leaked, like the metrics registry: thread-cached ring pointers must
  // stay valid through any destruction order the runtime picks.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

std::uint32_t FlightRecorder::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void FlightRecorder::register_thread(detail::ThreadRingRef& ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<EventRing>(ring_capacity_));
  ref.ring = rings_.back().get();
  ref.tid = static_cast<std::uint32_t>(rings_.size());  // 1-based
}

Journal FlightRecorder::snapshot() {
  Journal journal;
  std::lock_guard<std::mutex> lock(mutex_);
  journal.epoch_unix_ns = epoch_unix_ns_;
  journal.names = names_;
  for (auto& ring : rings_) {
    ring->drain(journal.events);
    journal.dropped_total += ring->dropped();
  }
  std::stable_sort(journal.events.begin(), journal.events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return journal;
}

std::uint64_t FlightRecorder::dropped_events_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void FlightRecorder::set_thread_ring_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = round_up_pow2(std::max<std::size_t>(events, 8));
}

std::size_t FlightRecorder::thread_ring_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_capacity_;
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> sink;
  for (auto& ring : rings_) {
    sink.clear();
    ring->drain(sink);
    ring->reset_dropped();
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) {
  const Journal journal = snapshot();
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << journal_to_jsonl(journal);
  return static_cast<bool>(out);
}

namespace {

char g_dump_path[512] = {0};
std::atomic<bool> g_dump_installed{false};

void dump_and_reraise(int sig) {
  // Best effort: snapshot + file I/O are not async-signal-safe, but these
  // handlers cover graceful terminations (SIGTERM/SIGINT) where the
  // process is otherwise idle enough for the dump to matter.
  FlightRecorder::global().dump_to_file(g_dump_path);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void dump_at_exit() { FlightRecorder::global().dump_to_file(g_dump_path); }

}  // namespace

void FlightRecorder::install_exit_dump(const std::string& path) {
  bool expected = false;
  if (!g_dump_installed.compare_exchange_strong(expected, true)) return;
  std::snprintf(g_dump_path, sizeof(g_dump_path), "%s", path.c_str());
  std::atexit(dump_at_exit);
  std::signal(SIGTERM, dump_and_reraise);
  std::signal(SIGINT, dump_and_reraise);
}

}  // namespace fsda::obs
