#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace fsda::obs {

thread_local Tracer::Node* Tracer::t_current_ = nullptr;

const SpanSnapshot* SpanSnapshot::child(const std::string& child_name) const {
  for (const SpanSnapshot& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // leaked, like the registry
  return *tracer;
}

Tracer::Node* Tracer::open(const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Node* parent = t_current_ != nullptr ? t_current_ : &root_;
  for (auto& child : parent->children) {
    if (child->name == name) {
      t_current_ = child.get();
      return child.get();
    }
  }
  auto node = std::make_unique<Node>();
  node->name = name;
  node->parent = parent;
  Node* raw = node.get();
  parent->children.push_back(std::move(node));
  t_current_ = raw;
  return raw;
}

void Tracer::close(Node* node, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  node->seconds += seconds;
  node->count += 1;
  t_current_ = node->parent == &root_ ? nullptr : node->parent;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Zero stats in place; see header for why nodes are not freed.
  const auto zero = [](const auto& self, Node& n) -> void {
    n.seconds = 0.0;
    n.count = 0;
    for (auto& c : n.children) self(self, *c);
  };
  zero(zero, root_);
}

SpanSnapshot Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto copy = [](const auto& self, const Node& n) -> SpanSnapshot {
    SpanSnapshot out{n.name, n.seconds, n.count, {}};
    for (const auto& c : n.children) {
      if (c->count == 0 && c->children.empty()) continue;  // reset leftover
      out.children.push_back(self(self, *c));
    }
    return out;
  };
  return copy(copy, root_);
}

std::string Tracer::to_string() const {
  const SpanSnapshot root = snapshot();
  std::ostringstream os;
  const auto render = [&os](const auto& self, const SpanSnapshot& n,
                            int depth) -> void {
    if (depth >= 0) {
      for (int i = 0; i < depth; ++i) os << "  ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f ms", n.seconds * 1e3);
      os << n.name << ": " << buf << " (x" << n.count << ")\n";
    }
    for (const SpanSnapshot& c : n.children) self(self, c, depth + 1);
  };
  render(render, root, -1);
  return os.str();
}

std::string Tracer::to_json() const {
  const SpanSnapshot root = snapshot();
  std::ostringstream os;
  const auto render = [&os](const auto& self, const SpanSnapshot& n) -> void {
    os << "{\"name\":" << json_string(n.name)
       << ",\"seconds\":" << json_number(n.seconds) << ",\"count\":" << n.count
       << ",\"children\":[";
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) os << ",";
      self(self, n.children[i]);
    }
    os << "]}";
  };
  render(render, root);
  return os.str();
}

SpanGuard::SpanGuard(const char* name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  node_ = tracer.open(name);
  start_ = std::chrono::steady_clock::now();
}

SpanGuard::~SpanGuard() {
  if (node_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Tracer::global().close(node_, seconds);
}

}  // namespace fsda::obs
