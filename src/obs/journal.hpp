// fsda::obs -- the flight recorder: a time-resolved, lock-free event
// journal (DESIGN.md §14).
//
// The PR-3 metrics layer answers "how much, in total"; this layer answers
// "when".  Every instrumented thread owns one fixed-size SPSC ring of
// compact 32-byte binary events (steady-clock timestamp, thread id,
// category, interned name id, one f64 payload).  Producers never block and
// never allocate: when a ring is full the event is dropped and counted --
// the journal keeps the OLDEST unconsumed events and drops the newest,
// deterministically, so `snapshot()` (the single consumer, serialized by
// the recorder mutex) sees a contiguous prefix of each thread's stream and
// `dropped_events_total()` is exact even under concurrent writers.  Drain
// regularly (a serving daemon snapshots on its scrape cadence); the
// exit/signal dump hook flushes whatever is still buffered.
//
// Recording is OFF by default.  A disabled emit is one relaxed atomic load
// (the FSDA_EVENT_* macros check the flag before touching anything else);
// an enabled emit is one steady_clock read plus one SPSC push -- no locks,
// no allocation, tens of nanoseconds.  String names are interned once per
// call site through a function-local static, so the hot path carries a
// 4-byte id, never a string.
//
// Snapshots merge all rings into a time-ordered Journal which the
// exporters (perfetto_export.hpp) turn into Chrome/Perfetto trace JSON or
// a JSON-lines dump, and which bench_drift_loop queries to compute
// detection latency and recovery time as first-class quantities.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fsda::obs {

enum class EventType : std::uint8_t {
  Begin = 0,    ///< scope open (Perfetto "B")
  End = 1,      ///< scope close (Perfetto "E")
  Instant = 2,  ///< point event (Perfetto "i")
  Counter = 3,  ///< sampled value (Perfetto "C")
};

enum class EventCategory : std::uint8_t {
  Serving = 0,
  Training = 1,
  Drift = 2,
  Causal = 3,
  System = 4,
};

[[nodiscard]] const char* to_string(EventType t) noexcept;
[[nodiscard]] const char* to_string(EventCategory c) noexcept;

/// One journal record; 32 bytes, trivially copyable (rings memcpy these).
struct Event {
  std::uint64_t ts_ns = 0;    ///< steady ns since the recorder epoch
  std::uint32_t name_id = 0;  ///< interned name (FlightRecorder::intern)
  std::uint32_t tid = 0;      ///< small sequential thread id
  EventType type = EventType::Instant;
  EventCategory cat = EventCategory::System;
  std::uint8_t pad_[6] = {};
  double value = 0.0;
};
static_assert(sizeof(Event) == 32, "Event must stay one compact cache "
                                   "half-line");

/// Single-producer single-consumer ring of events.  The producer is the
/// owning thread; the consumer is FlightRecorder::snapshot() (serialized by
/// the recorder mutex, so the SPSC invariant holds).  try_push drops the
/// NEWEST event when full -- bounded, wait-free, exactly counted.
class EventRing {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit EventRing(std::size_t capacity);

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Producer side.  False (and an exact drop count) when the ring is full.
  bool try_push(const Event& e) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= capacity_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= capacity_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slots_[head & mask_] = e;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends all pending events to `out`, oldest first, and
  /// frees their slots.  Returns the number drained.
  std::size_t drain(std::vector<Event>& out);

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void reset_dropped() noexcept {
    dropped_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events currently buffered (racy by nature; exact when quiescent).
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  std::unique_ptr<Event[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t cached_tail_ = 0;  // producer-local snapshot of tail_
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

/// Plain-value copy of the merged journal: all rings drained, events
/// ordered by timestamp, names resolved through the interning table.
struct Journal {
  /// Wall-clock ns (unix epoch) corresponding to steady ts_ns == 0, so
  /// exporters can anchor the trace in real time.
  std::uint64_t epoch_unix_ns = 0;
  std::vector<Event> events;       ///< time-ordered
  std::vector<std::string> names;  ///< name_id -> string
  std::uint64_t dropped_total = 0;

  [[nodiscard]] const std::string& name(std::uint32_t id) const;
};

namespace detail {
extern std::atomic<bool> g_recorder_enabled;
struct ThreadRingRef {
  EventRing* ring = nullptr;
  std::uint32_t tid = 0;
};
/// This thread's ring, registered with the global recorder on first use.
[[nodiscard]] ThreadRingRef& thread_ring();
}  // namespace detail

/// True when the flight recorder is capturing events (default: off).
[[nodiscard]] inline bool recorder_enabled() noexcept {
  return detail::g_recorder_enabled.load(std::memory_order_relaxed);
}

/// The process-wide flight recorder (leaked singleton, like the metrics
/// registry: rings cached in long-lived threads stay valid at shutdown).
class FlightRecorder {
 public:
  static FlightRecorder& global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_enabled(bool on) noexcept {
    detail::g_recorder_enabled.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept { return recorder_enabled(); }

  /// Interns `name`, returning a stable 4-byte id.  Takes the recorder
  /// mutex; call sites cache the id in a function-local static (the
  /// FSDA_EVENT_* macros do this).
  std::uint32_t intern(std::string_view name);

  /// Records one event into the calling thread's ring.  No-op when
  /// disabled.  Wait-free when enabled (after the thread's first emit,
  /// which registers its ring).
  void emit(EventType type, EventCategory cat, std::uint32_t name_id,
            double value) noexcept {
    if (!recorder_enabled()) return;
    detail::ThreadRingRef& tr = detail::thread_ring();
    Event e;
    e.ts_ns = now_ns();
    e.name_id = name_id;
    e.tid = tr.tid;
    e.type = type;
    e.cat = cat;
    e.value = value;
    tr.ring->try_push(e);
  }

  /// Steady ns since the recorder epoch (process start of the recorder).
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_steady_)
            .count());
  }

  /// Drains every ring and returns the merged, time-ordered journal.
  /// Events are consumed: a second snapshot returns only newer events.
  [[nodiscard]] Journal snapshot();

  /// Exact total of events dropped by full rings since start (or the last
  /// reset()), summed over all threads.
  [[nodiscard]] std::uint64_t dropped_events_total() const;

  /// Capacity (events) for rings registered AFTER this call; existing
  /// thread rings keep their size.  Rounded up to a power of two.
  void set_thread_ring_capacity(std::size_t events);
  [[nodiscard]] std::size_t thread_ring_capacity() const;

  /// Drains all rings into the void and zeroes the drop counters (tests).
  /// Ring registrations and interned names are kept.
  void reset();

  /// Writes a JSON-lines journal dump (header line + one event per line)
  /// of a fresh snapshot to `path`.  Best effort: false on I/O failure,
  /// never throws.
  bool dump_to_file(const std::string& path);

  /// Installs an atexit hook plus SIGTERM/SIGINT handlers that dump the
  /// journal to `path` before the process dies, then re-raise the default
  /// disposition.  The handlers are best-effort (they run non-async-safe
  /// code; acceptable on the graceful-termination paths they cover).
  /// Idempotent: the first path wins.
  void install_exit_dump(const std::string& path);

 private:
  friend detail::ThreadRingRef& detail::thread_ring();

  FlightRecorder();

  /// Registers the calling thread's ring (under mutex_).
  void register_thread(detail::ThreadRingRef& ref);

  std::chrono::steady_clock::time_point epoch_steady_;
  std::uint64_t epoch_unix_ns_ = 0;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<EventRing>> rings_;  // never removed
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::vector<std::string> names_;
  std::size_t ring_capacity_ = 8192;
};

/// RAII Begin/End pair for the journal; inert when the recorder is
/// disabled at construction (one relaxed load).
class ScopedEvent {
 public:
  template <typename IdFn>
  ScopedEvent(EventCategory cat, IdFn resolve_id) noexcept {
    if (recorder_enabled()) {
      cat_ = cat;
      id_ = resolve_id();
      active_ = true;
      FlightRecorder::global().emit(EventType::Begin, cat_, id_, 0.0);
    }
  }
  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;
  ~ScopedEvent() {
    if (active_) {
      FlightRecorder::global().emit(EventType::End, cat_, id_, 0.0);
    }
  }

 private:
  EventCategory cat_ = EventCategory::System;
  std::uint32_t id_ = 0;
  bool active_ = false;
};

}  // namespace fsda::obs

#define FSDA_EVENT_CONCAT_INNER(a, b) a##b
#define FSDA_EVENT_CONCAT(a, b) FSDA_EVENT_CONCAT_INNER(a, b)

/// Point event named by a string literal; `category` is an EventCategory,
/// `val` a double payload.  Disabled cost: one relaxed load.
#define FSDA_EVENT_INSTANT(category, name_literal, val)                       \
  do {                                                                        \
    if (::fsda::obs::recorder_enabled()) {                                    \
      static const std::uint32_t fsda_ev_id =                                 \
          ::fsda::obs::FlightRecorder::global().intern(name_literal);         \
      ::fsda::obs::FlightRecorder::global().emit(                             \
          ::fsda::obs::EventType::Instant, (category), fsda_ev_id, (val));    \
    }                                                                         \
  } while (0)

/// Sampled-value event (Perfetto counter track).
#define FSDA_EVENT_COUNTER(category, name_literal, val)                       \
  do {                                                                        \
    if (::fsda::obs::recorder_enabled()) {                                    \
      static const std::uint32_t fsda_ev_id =                                 \
          ::fsda::obs::FlightRecorder::global().intern(name_literal);         \
      ::fsda::obs::FlightRecorder::global().emit(                             \
          ::fsda::obs::EventType::Counter, (category), fsda_ev_id, (val));    \
    }                                                                         \
  } while (0)

/// Scoped Begin/End pair named by a string literal.
#define FSDA_EVENT_SCOPE(category, name_literal)                              \
  ::fsda::obs::ScopedEvent FSDA_EVENT_CONCAT(fsda_scope_, __LINE__)(          \
      (category), [] {                                                        \
        static const std::uint32_t id =                                       \
            ::fsda::obs::FlightRecorder::global().intern(name_literal);       \
        return id;                                                            \
      })
