// fsda::obs -- journal exporters: Chrome/Perfetto trace JSON + JSON lines
// (DESIGN.md §14).
//
// A Journal is a plain time-ordered event list; these functions turn it
// into files other tools read:
//
//   journal_to_perfetto   Chrome trace_event JSON ("traceEvents" array)
//                         loadable in ui.perfetto.dev or chrome://tracing.
//                         B/E events become nested slices per thread,
//                         Instant events "i" marks, Counter events "C"
//                         counter tracks.  Timestamps are microseconds
//                         from the recorder epoch.
//   journal_to_jsonl      the same JSON-lines dump format written by
//                         FlightRecorder::dump_to_file (header line then
//                         one event per line) -- greppable, appendable.
//   jsonl_to_perfetto     offline conversion: re-reads a JSONL dump (from
//                         a previous run, a crash dump, CI) and writes the
//                         Perfetto trace.  `fsda_cli obs perfetto` wraps
//                         this.
#pragma once

#include <string>

#include "obs/journal.hpp"

namespace fsda::obs {

/// Renders `journal` as Chrome trace_event JSON.
[[nodiscard]] std::string journal_to_perfetto(const Journal& journal);

/// Renders `journal` as the JSONL dump format (header + one line/event).
[[nodiscard]] std::string journal_to_jsonl(const Journal& journal);

/// Writes journal_to_perfetto(journal) to `path`; false on I/O failure.
bool write_perfetto_file(const Journal& journal, const std::string& path);

/// Parses a JSONL journal dump at `jsonl_path` (as written by
/// FlightRecorder::dump_to_file / journal_to_jsonl; unparseable lines are
/// skipped) and reconstructs the Journal.  False when the file cannot be
/// read or holds no journal lines.
bool read_jsonl_journal(const std::string& jsonl_path, Journal& out);

/// read_jsonl_journal + write_perfetto_file.
bool jsonl_to_perfetto(const std::string& jsonl_path,
                       const std::string& out_path);

}  // namespace fsda::obs
