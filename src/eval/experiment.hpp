// fsda::eval -- the few-shot DA experiment runner behind every table of the
// paper: draw k target shots per class, fit a DA method, score macro-F1 on
// the target test set, repeat over seeds, and summarize.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baselines/da_method.hpp"
#include "baselines/registry.hpp"
#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "models/classifier.hpp"

namespace fsda::eval {

/// One repeated-trials cell of a results table.
struct CellResult {
  std::vector<double> f1_scores;  ///< one per trial (in [0, 100])
  ScoreSummary summary;           ///< over f1_scores
  /// Mean count of variant features FS identified (our methods only).
  std::optional<double> mean_variant_count;
  double mean_fit_seconds = 0.0;
};

/// Runs `repeats` trials of one (method, classifier, shots) combination.
/// Each trial draws a fresh few-shot set from the target pool with
/// seed = base_seed + trial and evaluates on the fixed target test set.
CellResult run_cell(const data::DomainSplit& split,
                    const baselines::MethodEntry& method,
                    const models::ClassifierFactory& classifier_factory,
                    std::size_t shots, std::size_t repeats,
                    std::uint64_t base_seed);

/// Within-source cross-validation of a classifier (the paper's sanity check
/// that SrcOnly's cross-domain collapse is caused by drift, not by a weak
/// model): holds out `holdout_fraction` of the source, trains on the rest.
double within_source_f1(const data::Dataset& source,
                        const models::ClassifierFactory& classifier_factory,
                        double holdout_fraction, std::uint64_t seed);

}  // namespace fsda::eval
