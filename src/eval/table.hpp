// fsda::eval -- fixed-width text tables matching the layout of the paper's
// result tables, with CSV export for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace fsda::eval {

/// A simple left/right-aligned text table with optional group separators.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row (width must match the header).
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator before the next row.
  void add_separator();

  /// Renders with aligned columns (first column left, rest right).
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (separators are dropped).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

/// Formats a double with one decimal, the paper's table precision.
std::string format_f1(double value);

}  // namespace fsda::eval
