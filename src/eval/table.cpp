#include "eval/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace fsda::eval {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FSDA_CHECK_MSG(!header_.empty(), "table needs a header");
}

void TextTable::add_row(std::vector<std::string> row) {
  FSDA_CHECK_MSG(row.size() == header_.size(),
                 "row width " << row.size() << " != header width "
                              << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::size_t TextTable::num_rows() const {
  std::size_t count = 0;
  for (const auto& row : rows_) {
    if (!row.empty()) ++count;
  }
  return count;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      } else {
        os << std::right << std::setw(static_cast<int>(widths[c])) << row[c];
      }
    }
    os << " |\n";
  };
  auto emit_separator = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+" : "-+") << std::string(widths[c] + 2, '-');
    }
    os << "-+\n";
  };
  emit_separator();
  emit_row(header_);
  emit_separator();
  for (const auto& row : rows_) {
    if (row.empty()) emit_separator();
    else emit_row(row);
  }
  emit_separator();
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << common::escape_csv_field(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
  return os.str();
}

std::string format_f1(double value) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << value;
  return os.str();
}

}  // namespace fsda::eval
