#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fsda::eval {

la::Matrix confusion_matrix(const std::vector<std::int64_t>& truth,
                            const std::vector<std::int64_t>& predicted,
                            std::size_t num_classes) {
  FSDA_CHECK_MSG(truth.size() == predicted.size(), "length mismatch");
  FSDA_CHECK_MSG(!truth.empty(), "empty label vectors");
  la::Matrix cm(num_classes, num_classes, 0.0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto t = truth[i];
    const auto p = predicted[i];
    FSDA_CHECK_MSG(t >= 0 && static_cast<std::size_t>(t) < num_classes,
                   "truth label out of range: " << t);
    FSDA_CHECK_MSG(p >= 0 && static_cast<std::size_t>(p) < num_classes,
                   "predicted label out of range: " << p);
    cm(static_cast<std::size_t>(t), static_cast<std::size_t>(p)) += 1.0;
  }
  return cm;
}

double accuracy(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted) {
  FSDA_CHECK_MSG(truth.size() == predicted.size() && !truth.empty(),
                 "bad label vectors");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

std::vector<double> per_class_f1(const std::vector<std::int64_t>& truth,
                                 const std::vector<std::int64_t>& predicted,
                                 std::size_t num_classes) {
  const la::Matrix cm = confusion_matrix(truth, predicted, num_classes);
  std::vector<double> f1(num_classes, 0.0);
  for (std::size_t c = 0; c < num_classes; ++c) {
    const double tp = cm(c, c);
    double fp = 0.0, fn = 0.0;
    for (std::size_t o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      fp += cm(o, c);
      fn += cm(c, o);
    }
    const double denom = 2.0 * tp + fp + fn;
    f1[c] = denom > 0.0 ? 2.0 * tp / denom : 0.0;
  }
  return f1;
}

double macro_f1(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted,
                std::size_t num_classes) {
  const la::Matrix cm = confusion_matrix(truth, predicted, num_classes);
  const std::vector<double> f1 = per_class_f1(truth, predicted, num_classes);
  // Average only over classes with support in the truth labels, so absent
  // classes do not deflate the score.
  double total = 0.0;
  std::size_t supported = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    double support = 0.0;
    for (std::size_t o = 0; o < num_classes; ++o) support += cm(c, o);
    if (support > 0.0) {
      total += f1[c];
      ++supported;
    }
  }
  FSDA_CHECK_MSG(supported > 0, "no supported classes");
  return total / static_cast<double>(supported);
}

double micro_f1(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted,
                std::size_t num_classes) {
  const la::Matrix cm = confusion_matrix(truth, predicted, num_classes);
  double tp = 0.0, total = 0.0;
  for (std::size_t i = 0; i < num_classes; ++i) {
    tp += cm(i, i);
    for (std::size_t j = 0; j < num_classes; ++j) total += cm(i, j);
  }
  return total > 0.0 ? tp / total : 0.0;
}

ScoreSummary summarize(const std::vector<double>& scores) {
  FSDA_CHECK_MSG(!scores.empty(), "summarize of empty scores");
  ScoreSummary s;
  s.min = *std::min_element(scores.begin(), scores.end());
  s.max = *std::max_element(scores.begin(), scores.end());
  double acc = 0.0;
  for (double v : scores) acc += v;
  s.mean = acc / static_cast<double>(scores.size());
  if (scores.size() > 1) {
    double var = 0.0;
    for (double v : scores) var += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(scores.size() - 1));
  }
  return s;
}

}  // namespace fsda::eval
