// fsda::eval -- classification metrics.
//
// The paper reports F1-scores throughout; with 16 classes (5GC) and binary
// labels (5GIPC) we use the macro-averaged F1, the standard choice for the
// roughly class-balanced test sets described in Section IV.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace fsda::eval {

/// Row = true class, column = predicted class.
la::Matrix confusion_matrix(const std::vector<std::int64_t>& truth,
                            const std::vector<std::int64_t>& predicted,
                            std::size_t num_classes);

/// Fraction of exact matches.
double accuracy(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted);

/// Per-class F1 (0 when a class has no support and no predictions).
std::vector<double> per_class_f1(const std::vector<std::int64_t>& truth,
                                 const std::vector<std::int64_t>& predicted,
                                 std::size_t num_classes);

/// Macro-averaged F1 over classes present in the truth labels.
double macro_f1(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted,
                std::size_t num_classes);

/// Micro-averaged F1 (equals accuracy for single-label classification).
double micro_f1(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted,
                std::size_t num_classes);

/// Mean and sample standard deviation of a score list (for the paper's
/// variance-across-selections analysis, Section VI-C).
struct ScoreSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};
ScoreSummary summarize(const std::vector<double>& scores);

}  // namespace fsda::eval
