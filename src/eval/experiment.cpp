#include "eval/experiment.hpp"

#include "baselines/ours.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "data/scaler.hpp"

namespace fsda::eval {

CellResult run_cell(const data::DomainSplit& split,
                    const baselines::MethodEntry& method,
                    const models::ClassifierFactory& classifier_factory,
                    std::size_t shots, std::size_t repeats,
                    std::uint64_t base_seed) {
  FSDA_CHECK_MSG(repeats >= 1, "need at least one repeat");
  CellResult cell;
  double variant_total = 0.0;
  std::size_t variant_trials = 0;
  for (std::size_t trial = 0; trial < repeats; ++trial) {
    const std::uint64_t seed = base_seed + 1000003ULL * trial;
    const data::Dataset target_few =
        data::sample_few_shot(split.target_pool, shots, seed);
    baselines::DAMethodPtr instance = method.make();
    baselines::DAContext context{split.source_train, target_few,
                                 classifier_factory, seed};
    common::Stopwatch timer;
    instance->fit(context);
    cell.mean_fit_seconds += timer.seconds();
    const std::vector<std::int64_t> predicted =
        instance->predict(split.target_test.x);
    const double f1 = 100.0 * macro_f1(split.target_test.y, predicted,
                                       split.target_test.num_classes);
    cell.f1_scores.push_back(f1);
    // FS-based methods expose how many variant features they found.
    if (auto* fs = dynamic_cast<baselines::FsMethod*>(instance.get())) {
      variant_total +=
          static_cast<double>(fs->separation().variant.size());
      ++variant_trials;
    } else if (auto* fsr =
                   dynamic_cast<baselines::FsReconMethod*>(instance.get())) {
      variant_total +=
          static_cast<double>(fsr->separation().variant.size());
      ++variant_trials;
    }
    FSDA_LOG_INFO << split.name << " shots=" << shots << " "
                  << method.name << " trial=" << trial << " F1=" << f1;
  }
  cell.summary = summarize(cell.f1_scores);
  cell.mean_fit_seconds /= static_cast<double>(repeats);
  if (variant_trials > 0) {
    cell.mean_variant_count =
        variant_total / static_cast<double>(variant_trials);
  }
  return cell;
}

double within_source_f1(const data::Dataset& source,
                        const models::ClassifierFactory& classifier_factory,
                        double holdout_fraction, std::uint64_t seed) {
  auto [test, train] = data::stratified_split(source, holdout_fraction, seed);
  data::StandardScaler scaler;
  scaler.fit(train.x);
  auto model = classifier_factory(seed);
  model->fit(scaler.transform(train.x), train.y, train.num_classes, {});
  const auto predicted =
      models::argmax_rows(model->predict_proba(scaler.transform(test.x)));
  return 100.0 * macro_f1(test.y, predicted, test.num_classes);
}

}  // namespace fsda::eval
