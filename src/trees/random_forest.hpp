// fsda::trees -- bootstrap-aggregated random forest classifier (the "RF"
// downstream model of the paper's Table I).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "trees/decision_tree.hpp"

namespace fsda::trees {

struct ForestOptions {
  std::size_t num_trees = 50;
  TreeOptions tree;
  /// Bootstrap sample fraction of the training set per tree.
  double bootstrap_fraction = 1.0;
  /// Fit trees on the global thread pool.
  bool parallel = true;

  ForestOptions() {
    tree.max_depth = 14;
    tree.min_samples_leaf = 1;
    tree.min_samples_split = 2;
    // max_features = 0 here means "auto": sqrt(d), resolved at fit time.
  }
};

/// Random forest: bagged CART trees with sqrt(d) feature subsampling.
class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {});

  void fit(const la::Matrix& x, const std::vector<std::int64_t>& y,
           std::size_t num_classes, const std::vector<double>& weights,
           std::uint64_t seed);

  /// Average of tree leaf distributions.
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x) const;
  [[nodiscard]] std::vector<std::int64_t> predict(const la::Matrix& x) const;

  [[nodiscard]] bool is_fitted() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
};

}  // namespace fsda::trees
