// fsda::trees -- CART classification tree.
//
// Gini-impurity splits on continuous features with optional per-sample
// weights and per-node feature subsampling (the random-forest hook).
// Trees are stored as flat node arrays for cache-friendly prediction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace fsda::trees {

/// Hyperparameters shared by single trees and forests.
struct TreeOptions {
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features tried per node; 0 = all, otherwise min(value, d).
  std::size_t max_features = 0;
  double min_impurity_decrease = 1e-9;
};

/// A fitted CART classifier.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits on row-sample data with integer labels in [0, num_classes).
  /// `weights` may be empty (uniform).  `rng` drives feature subsampling.
  void fit(const la::Matrix& x, const std::vector<std::int64_t>& y,
           std::size_t num_classes, const std::vector<double>& weights,
           const TreeOptions& options, common::Rng& rng);

  /// Class-probability rows (leaf class frequencies).
  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x) const;

  /// Hard predictions (argmax of leaf distribution).
  [[nodiscard]] std::vector<std::int64_t> predict(const la::Matrix& x) const;

  [[nodiscard]] bool is_fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t depth() const;

 private:
  struct Node {
    // Internal node: feature/threshold valid, left/right >= 0.
    // Leaf: left == -1, distribution holds class probabilities.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::vector<double> distribution;
  };

  std::size_t build_node(const la::Matrix& x,
                         const std::vector<std::int64_t>& y,
                         const std::vector<double>& weights,
                         std::vector<std::size_t>& indices, std::size_t begin,
                         std::size_t end, std::size_t depth,
                         const TreeOptions& options, common::Rng& rng);

  [[nodiscard]] const Node& leaf_for(const la::Matrix& x, std::size_t row)
      const;

  std::vector<Node> nodes_;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
};

}  // namespace fsda::trees
