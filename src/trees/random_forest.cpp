#include "trees/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace fsda::trees {

RandomForest::RandomForest(ForestOptions options)
    : options_(std::move(options)) {
  FSDA_CHECK_MSG(options_.num_trees > 0, "forest needs at least one tree");
  FSDA_CHECK(options_.bootstrap_fraction > 0.0 &&
             options_.bootstrap_fraction <= 1.0);
}

void RandomForest::fit(const la::Matrix& x, const std::vector<std::int64_t>& y,
                       std::size_t num_classes,
                       const std::vector<double>& weights,
                       std::uint64_t seed) {
  const std::size_t n = x.rows();
  FSDA_CHECK_MSG(n > 0, "fit on empty data");
  num_classes_ = num_classes;
  trees_.assign(options_.num_trees, DecisionTree{});

  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(x.cols()))));
  }
  const auto boot_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.bootstrap_fraction *
                                  static_cast<double>(n)));

  auto fit_tree = [&](std::size_t t) {
    common::Rng rng(seed ^ (0x5DEECE66DULL * (t + 1)));
    // Bootstrap resample expressed as per-sample multiplicity weights, so
    // the tree sees the full matrix but an importance-weighted distribution.
    std::vector<double> boot_weights(n, 0.0);
    for (std::size_t i = 0; i < boot_n; ++i) {
      boot_weights[rng.uniform_index(n)] += 1.0;
    }
    if (!weights.empty()) {
      for (std::size_t i = 0; i < n; ++i) boot_weights[i] *= weights[i];
    }
    // Trees cannot split zero-weight rows usefully, but they are harmless:
    // they contribute nothing to counts.  Keep index set to weighted rows to
    // reduce sorting work.
    std::vector<std::size_t> rows;
    rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (boot_weights[i] > 0.0) rows.push_back(i);
    }
    const la::Matrix xb = x.select_rows(rows);
    std::vector<std::int64_t> yb(rows.size());
    std::vector<double> wb(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      yb[i] = y[rows[i]];
      wb[i] = boot_weights[rows[i]];
    }
    trees_[t].fit(xb, yb, num_classes_, wb, tree_options, rng);
  };

  if (options_.parallel) {
    common::parallel_for(trees_.size(), fit_tree);
  } else {
    for (std::size_t t = 0; t < trees_.size(); ++t) fit_tree(t);
  }
}

la::Matrix RandomForest::predict_proba(const la::Matrix& x) const {
  FSDA_CHECK_MSG(is_fitted(), "predict before fit");
  la::Matrix acc(x.rows(), num_classes_, 0.0);
  for (const auto& tree : trees_) {
    acc += tree.predict_proba(x);
  }
  acc *= 1.0 / static_cast<double>(trees_.size());
  return acc;
}

std::vector<std::int64_t> RandomForest::predict(const la::Matrix& x) const {
  const la::Matrix proba = predict_proba(x);
  std::vector<std::int64_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = proba.row(r);
    out[r] = static_cast<std::int64_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

}  // namespace fsda::trees
