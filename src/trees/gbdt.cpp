#include "trees/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "nn/activations.hpp"

namespace fsda::trees {

Gbdt::Gbdt(GbdtOptions options) : options_(options) {
  FSDA_CHECK(options_.rounds > 0);
  FSDA_CHECK(options_.learning_rate > 0.0);
  FSDA_CHECK(options_.num_bins >= 2 && options_.num_bins <= 255);
  FSDA_CHECK(options_.colsample > 0.0 && options_.colsample <= 1.0);
}

double Gbdt::Tree::predict_row(const la::Matrix& x, std::size_t row) const {
  std::size_t current = 0;
  for (;;) {
    const Node& node = nodes[current];
    if (node.left < 0) return node.value;
    const double v = x(row, static_cast<std::size_t>(node.feature));
    current = static_cast<std::size_t>(v <= node.threshold ? node.left
                                                           : node.right);
  }
}

Gbdt::Tree Gbdt::build_tree(const std::vector<std::uint8_t>& bins,
                            const std::vector<std::vector<double>>& bin_edges,
                            std::size_t n, const std::vector<double>& grad,
                            const std::vector<double>& hess,
                            const std::vector<std::size_t>& feature_pool)
    const {
  Tree tree;
  const std::size_t d = num_features_;
  const std::size_t b = options_.num_bins;

  struct WorkItem {
    std::vector<std::size_t> rows;
    std::size_t depth;
    std::int32_t node_index;
  };

  tree.nodes.emplace_back();
  std::vector<WorkItem> stack;
  {
    WorkItem root;
    root.rows.resize(n);
    std::iota(root.rows.begin(), root.rows.end(), std::size_t{0});
    root.depth = 0;
    root.node_index = 0;
    stack.push_back(std::move(root));
  }

  std::vector<double> hist_g(b), hist_h(b);
  while (!stack.empty()) {
    WorkItem item = std::move(stack.back());
    stack.pop_back();

    double g_total = 0.0, h_total = 0.0;
    for (std::size_t row : item.rows) {
      g_total += grad[row];
      h_total += hess[row];
    }
    const double parent_score =
        g_total * g_total / (h_total + options_.lambda);

    auto make_leaf = [&] {
      tree.nodes[static_cast<std::size_t>(item.node_index)].value =
          -g_total / (h_total + options_.lambda);
    };

    if (item.depth >= options_.max_depth || item.rows.size() < 2 ||
        h_total < 2.0 * options_.min_child_weight) {
      make_leaf();
      continue;
    }

    // Best split across the sampled feature pool via bin histograms.
    double best_gain = options_.min_gain;
    std::int32_t best_feature = -1;
    std::size_t best_bin = 0;
    for (std::size_t f : feature_pool) {
      std::fill(hist_g.begin(), hist_g.end(), 0.0);
      std::fill(hist_h.begin(), hist_h.end(), 0.0);
      for (std::size_t row : item.rows) {
        const std::uint8_t bin = bins[row * d + f];
        hist_g[bin] += grad[row];
        hist_h[bin] += hess[row];
      }
      double gl = 0.0, hl = 0.0;
      for (std::size_t bin = 0; bin + 1 < b; ++bin) {
        gl += hist_g[bin];
        hl += hist_h[bin];
        const double gr = g_total - gl;
        const double hr = h_total - hl;
        if (hl < options_.min_child_weight || hr < options_.min_child_weight) {
          continue;
        }
        const double gain = 0.5 * (gl * gl / (hl + options_.lambda) +
                                   gr * gr / (hr + options_.lambda) -
                                   parent_score);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<std::int32_t>(f);
          best_bin = bin;
        }
      }
    }

    if (best_feature < 0) {
      make_leaf();
      continue;
    }

    // Partition rows by bin index.
    WorkItem left, right;
    left.depth = right.depth = item.depth + 1;
    for (std::size_t row : item.rows) {
      if (bins[row * d + static_cast<std::size_t>(best_feature)] <= best_bin) {
        left.rows.push_back(row);
      } else {
        right.rows.push_back(row);
      }
    }
    FSDA_CHECK(!left.rows.empty() && !right.rows.empty());

    Node& node = tree.nodes[static_cast<std::size_t>(item.node_index)];
    node.feature = best_feature;
    node.threshold =
        bin_edges[static_cast<std::size_t>(best_feature)][best_bin];
    node.left = static_cast<std::int32_t>(tree.nodes.size());
    node.right = static_cast<std::int32_t>(tree.nodes.size() + 1);
    left.node_index = node.left;
    right.node_index = node.right;
    tree.nodes.emplace_back();
    tree.nodes.emplace_back();
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  return tree;
}

void Gbdt::fit(const la::Matrix& x, const std::vector<std::int64_t>& y,
               std::size_t num_classes, const std::vector<double>& weights,
               std::uint64_t seed) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  FSDA_CHECK_MSG(n > 0 && d > 0, "fit on empty data");
  FSDA_CHECK(y.size() == n);
  FSDA_CHECK(num_classes >= 2);
  FSDA_CHECK(weights.empty() || weights.size() == n);
  num_classes_ = num_classes;
  num_features_ = d;
  trees_.clear();

  // Quantile bin edges per feature; edge[k] is the upper raw value of bin k.
  const std::size_t b = options_.num_bins;
  std::vector<std::vector<double>> bin_edges(d, std::vector<double>(b));
  std::vector<double> column(n);
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t r = 0; r < n; ++r) column[r] = x(r, f);
    std::sort(column.begin(), column.end());
    for (std::size_t k = 0; k < b; ++k) {
      const double q = static_cast<double>(k + 1) / static_cast<double>(b);
      const auto pos = std::min<std::size_t>(
          n - 1, static_cast<std::size_t>(q * static_cast<double>(n)) -
                     ((q * static_cast<double>(n)) >= 1.0 ? 1 : 0));
      bin_edges[f][k] = column[pos];
    }
    bin_edges[f][b - 1] = column[n - 1];
  }

  // Bin index matrix (row-major, n x d).
  std::vector<std::uint8_t> bins(n * d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t f = 0; f < d; ++f) {
      const double v = x(r, f);
      const auto& edges = bin_edges[f];
      const auto it = std::lower_bound(edges.begin(), edges.end(), v);
      const std::size_t bin =
          std::min<std::size_t>(static_cast<std::size_t>(it - edges.begin()),
                                b - 1);
      bins[r * d + f] = static_cast<std::uint8_t>(bin);
    }
  }

  // Base score: per-class weighted log prior.
  std::vector<double> w = weights;
  if (w.empty()) w.assign(n, 1.0);
  base_score_.assign(num_classes_, 0.0);
  {
    std::vector<double> prior(num_classes_, 1e-6);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      prior[static_cast<std::size_t>(y[r])] += w[r];
      total += w[r];
    }
    for (std::size_t c = 0; c < num_classes_; ++c) {
      base_score_[c] = std::log(prior[c] / total);
    }
  }

  la::Matrix logits(n, num_classes_);
  for (std::size_t r = 0; r < n; ++r) logits.set_row(r, base_score_);

  common::Rng rng(seed ^ 0xB0057EDULL);
  const auto pool_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.colsample *
                                  static_cast<double>(d)));

  std::vector<double> grad(n), hess(n);
  for (std::size_t round = 0; round < options_.rounds; ++round) {
    const la::Matrix probs = nn::softmax_rows(logits);
    const auto feature_pool = rng.sample_without_replacement(d, pool_size);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      for (std::size_t r = 0; r < n; ++r) {
        const double p = probs(r, c);
        const double target = (static_cast<std::size_t>(y[r]) == c) ? 1.0
                                                                    : 0.0;
        grad[r] = w[r] * (p - target);
        hess[r] = std::max(w[r] * p * (1.0 - p), 1e-12);
      }
      Tree tree = build_tree(bins, bin_edges, n, grad, hess, feature_pool);
      for (std::size_t r = 0; r < n; ++r) {
        logits(r, c) += options_.learning_rate * tree.predict_row(x, r);
      }
      trees_.push_back(std::move(tree));
    }
  }
  fitted_ = true;
}

la::Matrix Gbdt::predict_proba(const la::Matrix& x) const {
  FSDA_CHECK_MSG(fitted_, "predict before fit");
  FSDA_CHECK(x.cols() == num_features_);
  la::Matrix logits(x.rows(), num_classes_);
  for (std::size_t r = 0; r < x.rows(); ++r) logits.set_row(r, base_score_);
  // Trees are stored class-major within each round.
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const std::size_t c = t % num_classes_;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      logits(r, c) += options_.learning_rate * trees_[t].predict_row(x, r);
    }
  }
  return nn::softmax_rows(logits);
}

std::vector<std::int64_t> Gbdt::predict(const la::Matrix& x) const {
  const la::Matrix proba = predict_proba(x);
  std::vector<std::int64_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = proba.row(r);
    out[r] = static_cast<std::int64_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

}  // namespace fsda::trees
