#include "trees/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace fsda::trees {

namespace {

/// Weighted Gini impurity of a class-count vector.
double gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double acc = 1.0;
  for (double c : counts) {
    const double p = c / total;
    acc -= p * p;
  }
  return acc;
}

struct BestSplit {
  std::int32_t feature = -1;
  double threshold = 0.0;
  double impurity_decrease = 0.0;
  std::size_t split_pos = 0;  // within the sorted order of the chosen feature
};

}  // namespace

void DecisionTree::fit(const la::Matrix& x, const std::vector<std::int64_t>& y,
                       std::size_t num_classes,
                       const std::vector<double>& weights,
                       const TreeOptions& options, common::Rng& rng) {
  const std::size_t n = x.rows();
  FSDA_CHECK_MSG(n > 0, "fit on empty data");
  FSDA_CHECK_MSG(y.size() == n, "labels/data mismatch");
  FSDA_CHECK_MSG(num_classes >= 2, "need at least two classes");
  FSDA_CHECK_MSG(weights.empty() || weights.size() == n, "weights mismatch");
  for (std::int64_t label : y) {
    FSDA_CHECK_MSG(label >= 0 &&
                       static_cast<std::size_t>(label) < num_classes,
                   "label " << label << " out of " << num_classes);
  }
  nodes_.clear();
  num_classes_ = num_classes;
  num_features_ = x.cols();
  std::vector<double> w = weights;
  if (w.empty()) w.assign(n, 1.0);
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Keep `w` reachable from build via capture of a member-free helper: pass
  // weights through the recursion explicitly.
  build_node(x, y, w, indices, 0, n, 0, options, rng);
}

std::size_t DecisionTree::build_node(
    const la::Matrix& x, const std::vector<std::int64_t>& y,
    const std::vector<double>& weights, std::vector<std::size_t>& indices,
    std::size_t begin, std::size_t end, std::size_t depth,
    const TreeOptions& options, common::Rng& rng) {
  const std::size_t node_index = nodes_.size();
  nodes_.emplace_back();
  const std::size_t count = end - begin;

  // Node class distribution.
  std::vector<double> counts(num_classes_, 0.0);
  double total_weight = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t row = indices[i];
    counts[static_cast<std::size_t>(y[row])] += weights[row];
    total_weight += weights[row];
  }
  const double node_impurity = gini(counts, total_weight);

  auto make_leaf = [&] {
    Node& node = nodes_[node_index];
    node.distribution.assign(num_classes_, 0.0);
    if (total_weight > 0.0) {
      for (std::size_t c = 0; c < num_classes_; ++c) {
        node.distribution[c] = counts[c] / total_weight;
      }
    } else {
      node.distribution.assign(num_classes_,
                               1.0 / static_cast<double>(num_classes_));
    }
  };

  const bool pure = node_impurity <= 1e-12;
  if (depth >= options.max_depth || count < options.min_samples_split ||
      pure) {
    make_leaf();
    return node_index;
  }

  // Candidate features.
  std::vector<std::size_t> features;
  if (options.max_features == 0 || options.max_features >= num_features_) {
    features.resize(num_features_);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(num_features_,
                                              options.max_features);
  }

  BestSplit best;
  std::vector<std::size_t> order(indices.begin() + begin,
                                 indices.begin() + end);
  std::vector<std::size_t> best_order;
  for (std::size_t f : features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x(a, f) < x(b, f);
    });
    // Scan split points between distinct values.
    std::vector<double> left_counts(num_classes_, 0.0);
    double left_weight = 0.0;
    std::size_t left_n = 0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const std::size_t row = order[i];
      left_counts[static_cast<std::size_t>(y[row])] += weights[row];
      left_weight += weights[row];
      ++left_n;
      const double v = x(row, f);
      const double v_next = x(order[i + 1], f);
      if (v_next <= v) continue;  // tie: not a valid split point
      const std::size_t right_n = order.size() - left_n;
      if (left_n < options.min_samples_leaf ||
          right_n < options.min_samples_leaf) {
        continue;
      }
      const double right_weight = total_weight - left_weight;
      if (left_weight <= 0.0 || right_weight <= 0.0) continue;
      std::vector<double> right_counts(num_classes_);
      for (std::size_t c = 0; c < num_classes_; ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double decrease =
          node_impurity -
          (left_weight / total_weight) * gini(left_counts, left_weight) -
          (right_weight / total_weight) * gini(right_counts, right_weight);
      if (decrease > best.impurity_decrease) {
        best.feature = static_cast<std::int32_t>(f);
        best.threshold = 0.5 * (v + v_next);
        best.impurity_decrease = decrease;
        best.split_pos = left_n;
        best_order = order;
      }
    }
  }

  if (best.feature < 0 ||
      best.impurity_decrease < options.min_impurity_decrease) {
    make_leaf();
    return node_index;
  }

  // Partition indices[begin, end) by the winning split's sorted order.
  std::copy(best_order.begin(), best_order.end(), indices.begin() + begin);
  const std::size_t mid = begin + best.split_pos;
  const std::size_t left_child = build_node(x, y, weights, indices, begin, mid,
                                            depth + 1, options, rng);
  const std::size_t right_child =
      build_node(x, y, weights, indices, mid, end, depth + 1, options, rng);
  Node& node = nodes_[node_index];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = static_cast<std::int32_t>(left_child);
  node.right = static_cast<std::int32_t>(right_child);
  return node_index;
}

const DecisionTree::Node& DecisionTree::leaf_for(const la::Matrix& x,
                                                 std::size_t row) const {
  FSDA_CHECK_MSG(is_fitted(), "predict before fit");
  std::size_t current = 0;
  for (;;) {
    const Node& node = nodes_[current];
    if (node.left < 0) return node;
    const double v = x(row, static_cast<std::size_t>(node.feature));
    current = static_cast<std::size_t>(v <= node.threshold ? node.left
                                                           : node.right);
  }
}

la::Matrix DecisionTree::predict_proba(const la::Matrix& x) const {
  FSDA_CHECK_MSG(x.cols() == num_features_, "feature width mismatch");
  la::Matrix out(x.rows(), num_classes_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const Node& leaf = leaf_for(x, r);
    out.set_row(r, leaf.distribution);
  }
  return out;
}

std::vector<std::int64_t> DecisionTree::predict(const la::Matrix& x) const {
  const la::Matrix proba = predict_proba(x);
  std::vector<std::int64_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = proba.row(r);
    out[r] = static_cast<std::int64_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

std::size_t DecisionTree::depth() const {
  // Depth by iterative traversal over the flat node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& node = nodes_[idx];
    if (node.left >= 0) {
      stack.push_back({static_cast<std::size_t>(node.left), d + 1});
      stack.push_back({static_cast<std::size_t>(node.right), d + 1});
    }
  }
  return best;
}

}  // namespace fsda::trees
