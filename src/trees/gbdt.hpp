// fsda::trees -- XGBoost-style gradient-boosted decision trees (the "XGB"
// downstream model of the paper's Table I).
//
// Softmax multiclass boosting with second-order (grad/hess) leaf weights,
// lambda-regularized gain, histogram split finding on quantile bins, and
// column subsampling.  One regression tree per class per round.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace fsda::trees {

struct GbdtOptions {
  std::size_t rounds = 25;
  double learning_rate = 0.3;
  std::size_t max_depth = 4;
  double lambda = 1.0;            ///< L2 regularization on leaf weights
  double min_child_weight = 1.0;  ///< minimum hessian sum per child
  double min_gain = 1e-6;
  double colsample = 0.6;  ///< fraction of features tried per tree
  std::size_t num_bins = 32;
};

/// Gradient-boosted classifier.
class Gbdt {
 public:
  explicit Gbdt(GbdtOptions options = {});

  void fit(const la::Matrix& x, const std::vector<std::int64_t>& y,
           std::size_t num_classes, const std::vector<double>& weights,
           std::uint64_t seed);

  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x) const;
  [[nodiscard]] std::vector<std::int64_t> predict(const la::Matrix& x) const;

  [[nodiscard]] bool is_fitted() const { return fitted_; }
  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t feature = -1;
    double threshold = 0.0;  ///< raw-value threshold (go left if <=)
    double value = 0.0;      ///< leaf weight
  };
  struct Tree {
    std::vector<Node> nodes;
    [[nodiscard]] double predict_row(const la::Matrix& x,
                                     std::size_t row) const;
  };

  /// Builds one regression tree on (grad, hess) using binned features.
  Tree build_tree(const std::vector<std::uint8_t>& bins,
                  const std::vector<std::vector<double>>& bin_edges,
                  std::size_t n, const std::vector<double>& grad,
                  const std::vector<double>& hess,
                  const std::vector<std::size_t>& feature_pool) const;

  GbdtOptions options_;
  std::vector<Tree> trees_;  ///< rounds * num_classes trees, class-major
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<double> base_score_;  ///< initial per-class log-odds
  bool fitted_ = false;
};

}  // namespace fsda::trees
