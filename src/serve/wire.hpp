// fsda::serve -- the daemon's length-prefixed binary framing (DESIGN.md
// §15).
//
// Every message on the Unix-domain socket is one frame:
//
//   [u32 body_len] [u8 type] [u64 request_id] [payload ...]
//   `----------- header -----------'
//
// body_len counts everything after itself (type + id + payload).  Matrix
// payloads (Predict requests, Proba responses) are
//
//   [u32 rows] [u32 cols] [f64 * rows*cols, row-major]
//
// and Error payloads are
//
//   [u8 code] [u32 msg_len] [msg bytes]
//
// Integers and doubles travel in host byte order: both ends of a
// unix-domain socket are, by construction, the same host.  A body_len
// above kMaxFrameBody (or a payload inconsistent with its type) is a
// malformed frame; FrameReader surfaces it as an error and the connection
// handler answers with WireError::BadFrame and drops the connection --
// resynchronizing an arbitrary byte stream is not worth the complexity.
//
// FrameReader is an incremental parser for the read side: feed() it
// whatever recv() produced, then next() yields complete frames until the
// buffer runs dry.  Partial frames stay buffered across feeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace fsda::serve {

enum class FrameType : std::uint8_t {
  Predict = 1,   ///< client -> server: matrix payload (raw feature rows)
  Proba = 2,     ///< server -> client: matrix payload (class probabilities)
  Error = 3,     ///< server -> client: typed rejection / failure
  Ping = 4,      ///< client -> server: liveness probe (empty payload)
  Pong = 5,      ///< server -> client: liveness reply (empty payload)
  Shutdown = 6,  ///< client -> server: ask the daemon to exit (empty)
};

/// Typed error codes carried by Error frames.  The two Shed* codes are the
/// admission controller's fast-reject answers; clients treat them as
/// retryable backpressure, unlike BadFrame/Internal.
enum class WireError : std::uint8_t {
  None = 0,
  ShedQueueFull = 1,  ///< admission: queue depth over the configured cap
  ShedSlo = 2,        ///< admission: error-budget burn rate over threshold
  BadFrame = 3,       ///< malformed or oversized frame
  Internal = 4,       ///< prediction failed server-side
  ShuttingDown = 5,   ///< daemon is draining; request was not accepted
};

[[nodiscard]] const char* to_string(WireError e) noexcept;

/// Hard cap on body_len: a 4 MiB-row batch is three orders of magnitude
/// past any sane micro-batch, so anything larger is garbage or abuse.
inline constexpr std::uint32_t kMaxFrameBody = 64u * 1024u * 1024u;

/// One parsed frame; payload excludes the type byte and request id.
struct Frame {
  FrameType type = FrameType::Ping;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

// -- Encoding (append to a byte buffer; the buffer is the write syscall's
//    unit, so one response = one append_* call = one send) ----------------

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t request_id, const std::uint8_t* payload,
                  std::size_t payload_len);
void append_matrix_frame(std::vector<std::uint8_t>& out, FrameType type,
                         std::uint64_t request_id, const la::Matrix& m);
void append_error_frame(std::vector<std::uint8_t>& out,
                        std::uint64_t request_id, WireError code,
                        const std::string& message);
inline void append_empty_frame(std::vector<std::uint8_t>& out, FrameType type,
                               std::uint64_t request_id) {
  append_frame(out, type, request_id, nullptr, 0);
}

// -- Decoding -------------------------------------------------------------

/// Parses a matrix payload; false when the payload is inconsistent
/// (truncated, rows*cols mismatch, or non-matrix type).
[[nodiscard]] bool decode_matrix_payload(const Frame& frame, la::Matrix& m);

/// Parses an Error payload; false when malformed.
[[nodiscard]] bool decode_error_payload(const Frame& frame, WireError& code,
                                        std::string& message);

/// Incremental frame parser over an arbitrary byte stream.
class FrameReader {
 public:
  /// Appends `len` raw bytes from the stream.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Extracts the next complete frame.  Returns false when no complete
  /// frame is buffered OR the stream is corrupt -- check bad() to tell the
  /// two apart; a bad reader never yields another frame.
  [[nodiscard]] bool next(Frame& frame);

  /// True once a structurally invalid frame (oversized or undersized
  /// body) was seen.
  [[nodiscard]] bool bad() const { return bad_; }

  /// Bytes buffered but not yet consumed (tests).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix; compacted opportunistically
  bool bad_ = false;
};

}  // namespace fsda::serve
