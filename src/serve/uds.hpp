// fsda::serve -- Unix-domain-socket front-end for the serving daemon
// (DESIGN.md §15).
//
// UdsServer binds a stream socket at a filesystem path and accepts
// connections on a dedicated thread; each connection gets one reader
// thread that incrementally parses frames (serve/wire.hpp) and feeds
// Predict requests into ServeDaemon::submit.  Responses are written from
// whichever thread completes the request -- the daemon's worker threads
// for served predictions, the reader thread itself for fast-rejects
// (sheds, malformed frames) and Ping -- serialized per connection by a
// write mutex so frames never interleave.  Connection objects are
// shared_ptr-owned by their reader thread AND by any in-flight completion
// callbacks, so a client that disconnects mid-request never leaves a
// dangling fd behind a worker's back; writes after the peer vanished fail
// silently (MSG_NOSIGNAL -- a dead client is routine, not an error).
//
// A Shutdown frame asks the daemon to exit: the server flips a flag its
// owner polls (the CLI's serve loop), it does not tear anything down
// itself -- teardown order (listener first, then daemon) is the owner's
// job.
//
// UdsClient is the matching blocking client used by `fsda client` and the
// load generator: one request in flight per client, responses matched by
// request id.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "la/matrix.hpp"
#include "serve/daemon.hpp"
#include "serve/wire.hpp"

namespace fsda::serve {

class UdsServer {
 public:
  /// `socket_path` is unlinked (if stale) at start() and again at stop().
  UdsServer(ServeDaemon& daemon, std::string socket_path);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens, and spawns the accept thread.  False (with a log
  /// line) when the socket cannot be bound.
  [[nodiscard]] bool start();

  /// Stops accepting, shuts every live connection, joins all threads.
  /// Idempotent.
  void stop();

  /// Set once a client sent a Shutdown frame; the owner polls this and
  /// tears down (listener, then daemon).
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const std::string& socket_path() const { return path_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;      ///< serializes whole-frame writes
    std::atomic<bool> open{true};
  };

  void accept_main();
  void connection_main(std::shared_ptr<Connection> conn);
  /// Writes one encoded frame buffer to `conn` (under its write mutex).
  static void write_all(const std::shared_ptr<Connection>& conn,
                        const std::vector<std::uint8_t>& buf);

  ServeDaemon& daemon_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;  // guarded by conns_mu_
};

/// Blocking request/response client over one connection.
class UdsClient {
 public:
  UdsClient() = default;
  ~UdsClient();

  UdsClient(const UdsClient&) = delete;
  UdsClient& operator=(const UdsClient&) = delete;

  [[nodiscard]] bool connect(const std::string& socket_path);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one Predict and blocks for its answer.  True with `proba`
  /// filled on success; false with `error` set on a typed rejection
  /// (sheds, bad frame, internal) or transport failure (error = Internal).
  [[nodiscard]] bool predict(const la::Matrix& x, la::Matrix& proba,
                             WireError& error);

  /// Liveness round-trip.
  [[nodiscard]] bool ping();

  /// Fire-and-forget daemon shutdown request.
  void request_shutdown();

 private:
  [[nodiscard]] bool send_buf(const std::vector<std::uint8_t>& buf);
  /// Reads until one complete frame is available.
  [[nodiscard]] bool read_frame(Frame& frame);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  FrameReader reader_;
};

}  // namespace fsda::serve
