// fsda::serve -- the daemon's MPMC request queue (DESIGN.md §15).
//
// A single mutex-guarded deque serializes every producer (connection
// reader) against every consumer (batching worker) on one cache line; at
// daemon concurrency that lock convoy is the first thing a profiler finds.
// ShardedQueue splits the queue into S independent shards, each a deque
// behind its own cache-line-padded mutex; producers and consumers pick
// shards round-robin via relaxed atomic tickets, so two threads touch the
// same lock only when they land on the same shard at the same time
// (probability ~1/S instead of 1).
//
// Ordering is FIFO per shard and approximately FIFO globally (round-robin
// tickets interleave shards evenly; a consumer drains shards in ticket
// order).  That is the right trade for a batching daemon: the scheduler
// coalesces whatever is oldest-ish into one batch anyway, and strict
// global FIFO would resurrect the single lock.
//
// Blocking waits go through one shared condition variable -- waiting is
// the cold path (a worker only sleeps when the queue is EMPTY, where
// contention is definitionally absent), so the cv does not shard.
// depth() is one relaxed atomic load, which is what admission control and
// the batch policy consume on their hot paths.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace fsda::serve {

template <typename T>
class ShardedQueue {
 public:
  explicit ShardedQueue(std::size_t shards = 4)
      : shards_(shards == 0 ? 1 : shards) {
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  /// Enqueues one item (round-robin shard).  False once close()d.
  bool push(T item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    Shard& s = *shards_[next_ticket(push_ticket_)];
    {
      std::lock_guard<std::mutex> lk(s.mu);
      s.items.push_back(std::move(item));
    }
    depth_.fetch_add(1, std::memory_order_release);
    cv_.notify_one();
    return true;
  }

  /// Moves up to `max_items` into `out` (appended) without blocking,
  /// draining shards round-robin from this consumer's ticket.  Returns the
  /// number taken.
  std::size_t try_pop(std::vector<T>& out, std::size_t max_items) {
    if (max_items == 0) return 0;
    std::size_t taken = 0;
    const std::size_t start = next_ticket(pop_ticket_);
    for (std::size_t i = 0; i < shards_.size() && taken < max_items; ++i) {
      Shard& s = *shards_[(start + i) % shards_.size()];
      std::lock_guard<std::mutex> lk(s.mu);
      while (!s.items.empty() && taken < max_items) {
        out.push_back(std::move(s.items.front()));
        s.items.pop_front();
        ++taken;
      }
    }
    if (taken > 0) depth_.fetch_sub(taken, std::memory_order_release);
    return taken;
  }

  /// Blocking try_pop: waits until at least one item arrives or the queue
  /// is closed AND drained.  Returns 0 only on that final condition, so a
  /// worker loop can use `while (q.pop(batch, n)) { ... }` for shutdown.
  std::size_t pop(std::vector<T>& out, std::size_t max_items) {
    for (;;) {
      const std::size_t taken = try_pop(out, max_items);
      if (taken > 0) return taken;
      std::unique_lock<std::mutex> lk(wait_mu_);
      if (closed_.load(std::memory_order_acquire) && depth() == 0) return 0;
      cv_.wait(lk, [&] {
        return depth() > 0 || closed_.load(std::memory_order_acquire);
      });
      if (closed_.load(std::memory_order_acquire) && depth() == 0) return 0;
    }
  }

  /// Rejects further pushes and wakes every waiting consumer.  Items
  /// already queued remain poppable (drain-then-exit shutdown).
  void close() {
    {
      // Paired with the cv_.wait lock so no consumer can check the flag
      // and sleep between our store and our broadcast.
      std::lock_guard<std::mutex> lk(wait_mu_);
      closed_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Items currently queued; one relaxed-ish atomic load (admission
  /// control's hot path).
  [[nodiscard]] std::size_t depth() const {
    return depth_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::deque<T> items;
  };

  std::size_t next_ticket(std::atomic<std::size_t>& ticket) {
    return ticket.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> push_ticket_{0};
  std::atomic<std::size_t> pop_ticket_{0};
  std::atomic<std::size_t> depth_{0};
  std::atomic<bool> closed_{false};
  std::mutex wait_mu_;
  std::condition_variable cv_;
};

}  // namespace fsda::serve
