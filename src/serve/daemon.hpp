// fsda::serve -- the concurrent serving daemon (DESIGN.md §15).
//
// ServeDaemon turns a trained FsGanPipeline into a long-running service:
//
//   submit() --admission--> ShardedQueue --workers--> micro-batches
//                                                         |
//                    completion callback  <--  predict_proba_serve
//
// Admission control runs at submit time, before anything is queued: a
// request is fast-rejected (typed ShedReason, no allocation beyond the
// caller's) when queue depth exceeds the configured cap, or when the
// process-wide serving SLO's error-budget burn rate crosses its threshold
// while real load is present.  Shedding at the door keeps the queue-wait
// distribution honest -- admitted requests are requests the daemon intends
// to serve within SLO.
//
// Each worker owns one FsGanPipeline::ServeSlot (pinned generation
// snapshot + session context + private buffers): it blocks on the queue,
// measures the first request's queue wait into a WindowedHdr, asks the
// pure batch policy for a target size, greedily coalesces whole queued
// requests up to that target (never waiting for rows that have not
// arrived), concatenates them into its reusable batch matrix, and runs ONE
// predict_proba_serve call -- which takes one acquire load on the model
// registry, so a drift-loop hot-swap lands transparently on batch
// boundaries.  Responses are sliced back per request and delivered through
// the completion callbacks on the worker thread.
//
// The daemon is front-end agnostic: submit() is the whole ingress API.
// The Unix-socket listener (serve/uds.hpp) is one front-end; tests and the
// load generator call submit() directly for determinism.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "la/matrix.hpp"
#include "obs/hdr_histogram.hpp"
#include "serve/batch_policy.hpp"
#include "serve/sharded_queue.hpp"
#include "serve/wire.hpp"

namespace fsda::serve {

struct ServeOptions {
  /// Inference worker threads (each with its own ServeSlot).
  std::size_t workers = 2;
  /// Request-queue shards.
  std::size_t queue_shards = 4;
  /// Micro-batch sizing policy.
  BatchPolicyOptions batch;
  /// Admission: shed (ShedQueueFull) when queue depth reaches this.
  std::size_t max_queue_depth = 512;
  /// Admission: shed (ShedSlo) when the serving SLO's error-budget burn
  /// rate exceeds this.  <= 0 disables SLO shedding.
  double shed_burn_rate = 2.0;
  /// SLO shedding only applies at/above this queue depth -- a burn-rate
  /// window poisoned by a past overload must not shed an idle daemon.
  std::size_t slo_shed_min_depth = 4;
  /// Rows every worker slot pre-sizes for (and the coalescing row cap
  /// inherits max_batch_rows, so keep reserve_rows >= max_batch_rows).
  std::size_t reserve_rows = 64;
  /// Epochs in the queue-wait sliding window.
  std::size_t wait_window_epochs = 8;
  /// Queue-wait quantile the batch policy consumes.
  double wait_quantile = 0.9;
  /// Refresh the cached wait quantile every this many dequeues (merging
  /// the window on every batch would put an O(buckets) scan on the hot
  /// path).
  std::size_t wait_refresh_every = 32;
  /// Base seed for the workers' reconstruction-noise streams.
  std::uint64_t seed = 0x5eedULL;
};

/// Admission verdict for one submit().
enum class Admission : std::uint8_t {
  Accepted = 0,
  ShedQueueFull = 1,
  ShedSlo = 2,
  ShuttingDown = 3,
};

[[nodiscard]] constexpr WireError to_wire_error(Admission a) noexcept {
  switch (a) {
    case Admission::ShedQueueFull: return WireError::ShedQueueFull;
    case Admission::ShedSlo: return WireError::ShedSlo;
    case Admission::ShuttingDown: return WireError::ShuttingDown;
    case Admission::Accepted: break;
  }
  return WireError::None;
}

/// Delivered to the completion callback, on a worker thread.
struct ServeResult {
  std::uint64_t request_id = 0;
  WireError error = WireError::None;  ///< None = proba is valid
  la::Matrix proba;                   ///< rows match the request
};

class ServeDaemon {
 public:
  /// The pipeline must stay alive and trained for the daemon's lifetime;
  /// background drift-loop publishes against it are fine (that is the
  /// point), concurrent train()/adapt() calls are not.
  ServeDaemon(core::FsGanPipeline& pipeline, ServeOptions options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Spawns the worker pool.  Idempotent.
  void start();

  /// Closes the queue, drains it, joins the workers.  Queued requests are
  /// still served; requests submitted after stop() begins are shed with
  /// ShuttingDown.  Idempotent.
  void stop();

  /// Ingress: hands one request (raw feature rows, any batch size) to the
  /// daemon.  On Accepted, `done` fires exactly once on a worker thread --
  /// with probabilities, or with a typed error if prediction failed.  On
  /// any Shed*/ShuttingDown verdict `done` does NOT fire; the caller
  /// already has everything a typed error frame needs.
  [[nodiscard]] Admission submit(la::Matrix x, std::uint64_t request_id,
                                 std::function<void(ServeResult&&)> done);

  /// Monotonic counters; coherent enough for tests and scrapes.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_slo = 0;
    std::uint64_t shed_shutdown = 0;
    std::uint64_t completed = 0;      ///< requests answered with Proba
    std::uint64_t failed = 0;         ///< requests answered with Error
    std::uint64_t batches = 0;        ///< predict calls issued
    std::uint64_t batched_rows = 0;   ///< rows across all predict calls
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  /// The cached recent queue-wait quantile (ms) the policy is seeing.
  [[nodiscard]] double recent_wait_ms() const {
    return recent_wait_ms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  struct Request {
    la::Matrix x;
    std::uint64_t id = 0;
    std::uint64_t enqueue_ns = 0;
    std::function<void(ServeResult&&)> done;
  };

  void worker_main(std::size_t worker_index);
  void run_batch(std::vector<std::unique_ptr<Request>>& batch,
                 core::FsGanPipeline::ServeSlot& slot, la::Matrix& batch_x,
                 la::Matrix& batch_proba);
  void refresh_wait_quantile();

  core::FsGanPipeline& pipeline_;
  ServeOptions options_;
  ShardedQueue<std::unique_ptr<Request>> queue_;
  obs::WindowedHdr wait_hdr_;
  std::atomic<double> recent_wait_ms_{0.0};
  std::atomic<std::uint64_t> dequeues_{0};
  std::atomic<std::uint64_t> wait_epoch_ns_{0};

  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_slo_{0};
  std::atomic<std::uint64_t> shed_shutdown_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_rows_{0};
};

}  // namespace fsda::serve
