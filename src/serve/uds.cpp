#include "serve/uds.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.hpp"

namespace fsda::serve {

namespace {

/// Fills a sockaddr_un; false when the path does not fit (sun_path is
/// ~108 bytes on Linux).
bool make_addr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool send_exact(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- server

UdsServer::UdsServer(ServeDaemon& daemon, std::string socket_path)
    : daemon_(daemon), path_(std::move(socket_path)) {}

UdsServer::~UdsServer() { stop(); }

bool UdsServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  sockaddr_un addr{};
  if (!make_addr(path_, addr)) {
    FSDA_LOG_ERROR << "uds: socket path too long: " << path_;
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    FSDA_LOG_ERROR << "uds: socket() failed: " << std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // clear a stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    FSDA_LOG_ERROR << "uds: bind/listen on " << path_
                   << " failed: " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&UdsServer::accept_main, this);
  return true;
}

void UdsServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept() by shutting the listener down, then wake every
  // connection reader the same way.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      if (c->open.exchange(false)) ::shutdown(c->fd, SHUT_RDWR);
    }
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      // Daemon-worker completion callbacks may still hold this connection;
      // close under its write mutex so a late write_all either finishes
      // first or sees open == false, never a recycled fd.
      std::lock_guard<std::mutex> wk(c->write_mu);
      if (c->fd >= 0) ::close(c->fd);
      c->fd = -1;
    }
    conns_.clear();
  }
  ::unlink(path_.c_str());
}

void UdsServer::accept_main() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or fatal
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back(&UdsServer::connection_main, this, conn);
  }
}

void UdsServer::write_all(const std::shared_ptr<Connection>& conn,
                          const std::vector<std::uint8_t>& buf) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(conn->write_mu);
  if (!conn->open.load(std::memory_order_acquire)) return;
  // Best effort: a peer that hung up mid-response is routine churn.
  (void)send_exact(conn->fd, buf.data(), buf.size());
}

void UdsServer::connection_main(std::shared_ptr<Connection> conn) {
  FrameReader reader;
  std::vector<std::uint8_t> rx(64 * 1024);
  std::vector<std::uint8_t> tx;
  Frame frame;
  la::Matrix x;

  while (conn->open.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(conn->fd, rx.data(), rx.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or connection shut down
    reader.feed(rx.data(), static_cast<std::size_t>(n));

    while (reader.next(frame)) {
      switch (frame.type) {
        case FrameType::Ping: {
          tx.clear();
          append_empty_frame(tx, FrameType::Pong, frame.request_id);
          write_all(conn, tx);
          break;
        }
        case FrameType::Shutdown: {
          shutdown_requested_.store(true, std::memory_order_release);
          break;
        }
        case FrameType::Predict: {
          if (!decode_matrix_payload(frame, x)) {
            tx.clear();
            append_error_frame(tx, frame.request_id, WireError::BadFrame,
                               "malformed matrix payload");
            write_all(conn, tx);
            break;
          }
          const std::uint64_t id = frame.request_id;
          const Admission verdict = daemon_.submit(
              std::move(x), id, [this, conn, id](ServeResult&& res) {
                // Worker thread: serialize and ship the answer.
                std::vector<std::uint8_t> out;
                if (res.error == WireError::None) {
                  append_matrix_frame(out, FrameType::Proba, id, res.proba);
                } else {
                  append_error_frame(out, id, res.error,
                                     to_string(res.error));
                }
                write_all(conn, out);
              });
          if (verdict != Admission::Accepted) {
            // Fast reject: typed error straight from the reader thread.
            tx.clear();
            append_error_frame(tx, id, to_wire_error(verdict),
                               to_string(to_wire_error(verdict)));
            write_all(conn, tx);
          }
          x = la::Matrix();  // moved-from either way; reset for reuse
          break;
        }
        default: {
          tx.clear();
          append_error_frame(tx, frame.request_id, WireError::BadFrame,
                             "unexpected frame type");
          write_all(conn, tx);
          break;
        }
      }
    }
    if (reader.bad()) {
      tx.clear();
      append_error_frame(tx, 0, WireError::BadFrame, "unparseable stream");
      write_all(conn, tx);
      break;  // drop the connection; resync is not attempted
    }
  }
  if (conn->open.exchange(false)) ::shutdown(conn->fd, SHUT_RDWR);
}

// ---------------------------------------------------------------- client

UdsClient::~UdsClient() { close(); }

bool UdsClient::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  if (!make_addr(socket_path, addr)) return false;
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void UdsClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

bool UdsClient::send_buf(const std::vector<std::uint8_t>& buf) {
  return fd_ >= 0 && send_exact(fd_, buf.data(), buf.size());
}

bool UdsClient::read_frame(Frame& frame) {
  std::uint8_t rx[16 * 1024];
  while (fd_ >= 0) {
    if (reader_.next(frame)) return true;
    if (reader_.bad()) return false;
    const ssize_t n = ::recv(fd_, rx, sizeof(rx), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    reader_.feed(rx, static_cast<std::size_t>(n));
  }
  return false;
}

bool UdsClient::predict(const la::Matrix& x, la::Matrix& proba,
                        WireError& error) {
  error = WireError::Internal;
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> buf;
  append_matrix_frame(buf, FrameType::Predict, id, x);
  if (!send_buf(buf)) return false;
  Frame frame;
  for (;;) {
    if (!read_frame(frame)) return false;
    if (frame.request_id != id) continue;  // stale answer; skip
    if (frame.type == FrameType::Proba) {
      if (!decode_matrix_payload(frame, proba)) return false;
      error = WireError::None;
      return true;
    }
    if (frame.type == FrameType::Error) {
      std::string msg;
      if (!decode_error_payload(frame, error, msg)) {
        error = WireError::Internal;
      }
      return false;
    }
  }
}

bool UdsClient::ping() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> buf;
  append_empty_frame(buf, FrameType::Ping, id);
  if (!send_buf(buf)) return false;
  Frame frame;
  do {
    if (!read_frame(frame)) return false;
  } while (frame.request_id != id || frame.type != FrameType::Pong);
  return true;
}

void UdsClient::request_shutdown() {
  std::vector<std::uint8_t> buf;
  append_empty_frame(buf, FrameType::Shutdown, 0);
  (void)send_buf(buf);
}

}  // namespace fsda::serve
