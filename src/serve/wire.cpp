#include "serve/wire.hpp"

#include <cstring>

namespace fsda::serve {

namespace {

// Header = body_len(u32); body = type(u8) + request_id(u64) + payload.
constexpr std::size_t kLenBytes = 4;
constexpr std::size_t kBodyFixed = 1 + 8;

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
bool get(const std::uint8_t* data, std::size_t len, std::size_t& off, T& v) {
  if (off + sizeof(T) > len) return false;
  std::memcpy(&v, data + off, sizeof(T));
  off += sizeof(T);
  return true;
}

}  // namespace

const char* to_string(WireError e) noexcept {
  switch (e) {
    case WireError::None: return "none";
    case WireError::ShedQueueFull: return "shed-queue-full";
    case WireError::ShedSlo: return "shed-slo";
    case WireError::BadFrame: return "bad-frame";
    case WireError::Internal: return "internal";
    case WireError::ShuttingDown: return "shutting-down";
  }
  return "unknown";
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t request_id, const std::uint8_t* payload,
                  std::size_t payload_len) {
  const auto body_len =
      static_cast<std::uint32_t>(kBodyFixed + payload_len);
  out.reserve(out.size() + kLenBytes + body_len);
  put(out, body_len);
  put(out, static_cast<std::uint8_t>(type));
  put(out, request_id);
  if (payload_len > 0) out.insert(out.end(), payload, payload + payload_len);
}

void append_matrix_frame(std::vector<std::uint8_t>& out, FrameType type,
                         std::uint64_t request_id, const la::Matrix& m) {
  const auto rows = static_cast<std::uint32_t>(m.rows());
  const auto cols = static_cast<std::uint32_t>(m.cols());
  const std::size_t payload_len =
      2 * sizeof(std::uint32_t) +
      static_cast<std::size_t>(rows) * cols * sizeof(double);
  const auto body_len = static_cast<std::uint32_t>(kBodyFixed + payload_len);
  out.reserve(out.size() + kLenBytes + body_len);
  put(out, body_len);
  put(out, static_cast<std::uint8_t>(type));
  put(out, request_id);
  put(out, rows);
  put(out, cols);
  // Matrix storage is row-major and dense: one bulk copy.
  const auto* raw = reinterpret_cast<const std::uint8_t*>(m.data().data());
  out.insert(out.end(), raw,
             raw + static_cast<std::size_t>(rows) * cols * sizeof(double));
}

void append_error_frame(std::vector<std::uint8_t>& out,
                        std::uint64_t request_id, WireError code,
                        const std::string& message) {
  const std::size_t payload_len =
      1 + sizeof(std::uint32_t) + message.size();
  const auto body_len = static_cast<std::uint32_t>(kBodyFixed + payload_len);
  out.reserve(out.size() + kLenBytes + body_len);
  put(out, body_len);
  put(out, static_cast<std::uint8_t>(FrameType::Error));
  put(out, request_id);
  put(out, static_cast<std::uint8_t>(code));
  put(out, static_cast<std::uint32_t>(message.size()));
  out.insert(out.end(),
             reinterpret_cast<const std::uint8_t*>(message.data()),
             reinterpret_cast<const std::uint8_t*>(message.data()) +
                 message.size());
}

bool decode_matrix_payload(const Frame& frame, la::Matrix& m) {
  if (frame.type != FrameType::Predict && frame.type != FrameType::Proba) {
    return false;
  }
  const std::uint8_t* data = frame.payload.data();
  const std::size_t len = frame.payload.size();
  std::size_t off = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  if (!get(data, len, off, rows) || !get(data, len, off, cols)) return false;
  const std::size_t cells = static_cast<std::size_t>(rows) * cols;
  if (len - off != cells * sizeof(double)) return false;
  if (rows == 0 || cols == 0) return false;
  m.resize(rows, cols);
  std::memcpy(m.data().data(), data + off, cells * sizeof(double));
  return true;
}

bool decode_error_payload(const Frame& frame, WireError& code,
                          std::string& message) {
  if (frame.type != FrameType::Error) return false;
  const std::uint8_t* data = frame.payload.data();
  const std::size_t len = frame.payload.size();
  std::size_t off = 0;
  std::uint8_t raw_code = 0;
  std::uint32_t msg_len = 0;
  if (!get(data, len, off, raw_code) || !get(data, len, off, msg_len)) {
    return false;
  }
  if (len - off != msg_len) return false;
  if (raw_code > static_cast<std::uint8_t>(WireError::ShuttingDown)) {
    return false;
  }
  code = static_cast<WireError>(raw_code);
  message.assign(reinterpret_cast<const char*>(data + off), msg_len);
  return true;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t len) {
  if (bad_ || len == 0) return;
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow without bound on a long-lived connection.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameReader::next(Frame& frame) {
  if (bad_) return false;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kLenBytes) return false;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, buf_.data() + pos_, sizeof(body_len));
  if (body_len < kBodyFixed || body_len > kMaxFrameBody) {
    bad_ = true;
    return false;
  }
  if (avail < kLenBytes + body_len) return false;
  const std::uint8_t* body = buf_.data() + pos_ + kLenBytes;
  const std::uint8_t type_raw = body[0];
  if (type_raw < static_cast<std::uint8_t>(FrameType::Predict) ||
      type_raw > static_cast<std::uint8_t>(FrameType::Shutdown)) {
    bad_ = true;
    return false;
  }
  frame.type = static_cast<FrameType>(type_raw);
  std::memcpy(&frame.request_id, body + 1, sizeof(frame.request_id));
  frame.payload.assign(body + kBodyFixed, body + body_len);
  pos_ += kLenBytes + body_len;
  return true;
}

}  // namespace fsda::serve
