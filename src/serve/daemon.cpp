#include "serve/daemon.hpp"

#include <cstring>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace fsda::serve {

namespace {

/// Queue-wait window epoch; with the default 8 epochs the policy sees a
/// ~2 s sliding window, long enough to smooth scheduling jitter and short
/// enough to track a load swing within a couple of seconds.
constexpr std::uint64_t kWaitEpochNs = 250ull * 1000 * 1000;

constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

obs::Counter& shed_counter(const char* reason) {
  return obs::MetricsRegistry::global().counter(
      obs::metric_with_label("serve.shed_total", "reason", reason),
      "requests fast-rejected by admission control");
}

}  // namespace

ServeDaemon::ServeDaemon(core::FsGanPipeline& pipeline, ServeOptions options)
    : pipeline_(pipeline),
      options_(options),
      queue_(options.queue_shards),
      wait_hdr_(options.wait_window_epochs == 0 ? 1
                                                : options.wait_window_epochs) {
  FSDA_CHECK_MSG(pipeline_.is_trained(), "ServeDaemon over untrained pipeline");
  if (options_.workers == 0) options_.workers = 1;
  if (options_.wait_refresh_every == 0) options_.wait_refresh_every = 1;
  wait_epoch_ns_.store(obs::FlightRecorder::global().now_ns(),
                       std::memory_order_relaxed);
}

ServeDaemon::~ServeDaemon() { stop(); }

void ServeDaemon::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accepting_.store(true, std::memory_order_release);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&ServeDaemon::worker_main, this, i);
  }
}

void ServeDaemon::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  accepting_.store(false, std::memory_order_release);
  queue_.close();  // workers drain what is queued, then exit
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  running_.store(false, std::memory_order_release);
}

Admission ServeDaemon::submit(la::Matrix x, std::uint64_t request_id,
                              std::function<void(ServeResult&&)> done) {
  static obs::Counter& requests_total = obs::MetricsRegistry::global().counter(
      "serve.requests_total", "requests offered to the serving daemon");
  requests_total.inc();
  if (!accepting_.load(std::memory_order_acquire)) {
    shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = shed_counter("shutdown");
    c.inc();
    return Admission::ShuttingDown;
  }

  // Malformed requests are answered immediately (synchronously, on the
  // caller's thread) instead of poisoning a worker's batch: every request
  // inside one micro-batch must share the pipeline's feature width.
  if (x.rows() == 0 || x.cols() != pipeline_.scaled_source().cols()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    ServeResult r;
    r.request_id = request_id;
    r.error = WireError::BadFrame;
    if (done) done(std::move(r));
    return Admission::Accepted;
  }

  const std::size_t depth = queue_.depth();
  if (depth >= options_.max_queue_depth) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = shed_counter("queue_full");
    c.inc();
    FSDA_EVENT_INSTANT(obs::EventCategory::Serving, "serve.shed",
                       static_cast<double>(depth));
    return Admission::ShedQueueFull;
  }
  if (options_.shed_burn_rate > 0.0 && depth >= options_.slo_shed_min_depth &&
      obs::serving_slo().error_budget_burn_rate() > options_.shed_burn_rate) {
    shed_slo_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = shed_counter("slo_burn");
    c.inc();
    FSDA_EVENT_INSTANT(obs::EventCategory::Serving, "serve.shed",
                       static_cast<double>(depth));
    return Admission::ShedSlo;
  }

  auto req = std::make_unique<Request>();
  req->x = std::move(x);
  req->id = request_id;
  req->enqueue_ns = obs::FlightRecorder::global().now_ns();
  req->done = std::move(done);
  if (!queue_.push(std::move(req))) {
    // Lost the race with stop(): the queue closed between the accepting_
    // check and the push.
    shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = shed_counter("shutdown");
    c.inc();
    return Admission::ShuttingDown;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  FSDA_EVENT_INSTANT(obs::EventCategory::Serving, "serve.enqueue",
                     static_cast<double>(depth + 1));
  return Admission::Accepted;
}

void ServeDaemon::refresh_wait_quantile() {
  const obs::HdrHistogram merged = wait_hdr_.merged();
  recent_wait_ms_.store(
      merged.count() > 0 ? merged.value_at_quantile(options_.wait_quantile)
                         : 0.0,
      std::memory_order_relaxed);
}

void ServeDaemon::worker_main(std::size_t worker_index) {
  auto slot = pipeline_.create_serve_slot(options_.seed +
                                          worker_index * kSeedStride);
  const std::size_t reserve =
      std::max(options_.reserve_rows, options_.batch.max_batch_rows);
  pipeline_.reserve_serve_slot(*slot, reserve);

  la::Matrix batch_x;
  la::Matrix batch_proba;
  std::vector<std::unique_ptr<Request>> batch;
  batch.reserve(options_.batch.max_batch_rows);

  for (;;) {
    batch.clear();
    if (queue_.pop(batch, 1) == 0) break;  // closed and drained

    // Queue wait of the head request drives the batch policy.
    const std::uint64_t now = obs::FlightRecorder::global().now_ns();
    const double head_wait_ms =
        static_cast<double>(now - batch.front()->enqueue_ns) / 1e6;
    wait_hdr_.record_always(head_wait_ms);
    FSDA_EVENT_INSTANT(obs::EventCategory::Serving, "serve.dequeue",
                       head_wait_ms);

    // Lazy, contention-free window maintenance: whichever worker notices
    // the epoch elapsed rotates and refreshes the cached quantile.
    std::uint64_t epoch = wait_epoch_ns_.load(std::memory_order_relaxed);
    if (now - epoch >= kWaitEpochNs &&
        wait_epoch_ns_.compare_exchange_strong(epoch, now,
                                               std::memory_order_relaxed)) {
      wait_hdr_.rotate();
      refresh_wait_quantile();
    } else if (dequeues_.fetch_add(1, std::memory_order_relaxed) %
                   options_.wait_refresh_every ==
               0) {
      refresh_wait_quantile();
    }

    // Greedy coalescing: take whole queued requests while the batch is
    // below target.  Never waits -- rows that have not arrived cannot
    // reduce anyone's latency.  A multi-row request may overshoot the
    // target; the cap is advisory, correctness never depends on it.
    std::size_t rows = batch.front()->x.rows();
    const std::size_t target = target_batch_rows(
        queue_.depth() + rows, recent_wait_ms(), options_.batch);
    while (rows < target) {
      if (queue_.try_pop(batch, 1) == 0) break;
      const std::uint64_t w_ns =
          obs::FlightRecorder::global().now_ns() - batch.back()->enqueue_ns;
      wait_hdr_.record_always(static_cast<double>(w_ns) / 1e6);
      rows += batch.back()->x.rows();
    }

    run_batch(batch, *slot, batch_x, batch_proba);
  }
}

void ServeDaemon::run_batch(std::vector<std::unique_ptr<Request>>& batch,
                            core::FsGanPipeline::ServeSlot& slot,
                            la::Matrix& batch_x, la::Matrix& batch_proba) {
  FSDA_EVENT_SCOPE(obs::EventCategory::Serving, "serve.batch");
  const std::size_t cols = batch.front()->x.cols();
  std::size_t rows = 0;
  for (const auto& r : batch) rows += r->x.rows();
  FSDA_EVENT_COUNTER(obs::EventCategory::Serving, "serve.batch_rows",
                     static_cast<double>(rows));

  // Single-request batches skip the gather copy entirely.
  const la::Matrix* x = &batch.front()->x;
  if (batch.size() > 1) {
    batch_x.resize(rows, cols);
    std::size_t at = 0;
    for (const auto& r : batch) {
      std::memcpy(batch_x.row(at).data(), r->x.data().data(),
                  r->x.size() * sizeof(double));
      at += r->x.rows();
    }
    x = &batch_x;
  }

  try {
    pipeline_.predict_proba_serve(*x, batch_proba, slot);
  } catch (const std::exception& e) {
    FSDA_LOG_WARN << "serve batch failed: " << e.what();
    for (auto& r : batch) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (!r->done) continue;
      ServeResult res;
      res.request_id = r->id;
      res.error = WireError::Internal;
      r->done(std::move(res));
    }
    return;
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_rows_.fetch_add(rows, std::memory_order_relaxed);

  // Slice the stacked probabilities back out per request.
  std::size_t at = 0;
  for (auto& r : batch) {
    const std::size_t n = r->x.rows();
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (r->done) {
      ServeResult res;
      res.request_id = r->id;
      res.proba.resize(n, batch_proba.cols());
      std::memcpy(res.proba.data().data(), batch_proba.row(at).data(),
                  n * batch_proba.cols() * sizeof(double));
      r->done(std::move(res));
    }
    at += n;
  }
}

ServeDaemon::Stats ServeDaemon::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_slo = shed_slo_.load(std::memory_order_relaxed);
  s.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fsda::serve
