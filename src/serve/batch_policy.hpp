// fsda::serve -- adaptive micro-batch sizing (DESIGN.md §15).
//
// The scheduler's one tuning decision is "how many queued rows should a
// worker coalesce into its next inference batch".  Small batches keep p50
// low when the daemon is lightly loaded (a lone request never waits for
// company); large batches amortize per-call overhead and exploit the GEMM
// efficiency of tall inputs when requests pile up.  The policy is a pure
// function of two observable load signals -- current queue depth and a
// recent queue-wait quantile (fed by a WindowedHdr over per-request wait
// times) -- so it is deterministic, unit-testable against exact oracles,
// and free of hidden state.
#pragma once

#include <algorithm>
#include <cstddef>

namespace fsda::serve {

struct BatchPolicyOptions {
  /// Floor of the target batch (rows); also the light-load batch size.
  std::size_t min_batch_rows = 1;
  /// Ceiling of the target batch (rows).
  std::size_t max_batch_rows = 64;
  /// Queue-wait quantile at/below which the daemon counts as unloaded:
  /// the target stays at min_batch_rows to protect p50.
  double wait_low_ms = 0.5;
  /// Queue-wait quantile at/above which the daemon counts as saturated:
  /// the target goes all the way to max_batch_rows.
  double wait_high_ms = 8.0;
};

/// Target rows for the next micro-batch given `queue_depth` requests
/// waiting and a recent queue-wait quantile of `recent_wait_ms`.
///
/// Shape:
///   - waits <= wait_low_ms  -> min_batch_rows (plus whatever is already
///     queued, up to the cap: draining a backlog never helps latency by
///     leaving rows behind);
///   - waits >= wait_high_ms -> max_batch_rows;
///   - in between            -> linear interpolation, rounded to nearest.
///
/// The result is clamped to [min_batch_rows, max_batch_rows] and never
/// exceeds what could plausibly be coalesced right now
/// (max(queue_depth, min_batch_rows)) -- the scheduler is greedy, it never
/// *waits* for rows that have not arrived, so a target beyond the current
/// depth would be meaningless.
[[nodiscard]] inline std::size_t target_batch_rows(
    std::size_t queue_depth, double recent_wait_ms,
    const BatchPolicyOptions& opt) {
  const std::size_t lo = std::max<std::size_t>(opt.min_batch_rows, 1);
  const std::size_t hi = std::max(opt.max_batch_rows, lo);

  double f = 0.0;  // pressure in [0, 1]
  if (recent_wait_ms >= opt.wait_high_ms) {
    f = 1.0;
  } else if (recent_wait_ms > opt.wait_low_ms &&
             opt.wait_high_ms > opt.wait_low_ms) {
    f = (recent_wait_ms - opt.wait_low_ms) /
        (opt.wait_high_ms - opt.wait_low_ms);
  }
  const double span = static_cast<double>(hi - lo);
  std::size_t target = lo + static_cast<std::size_t>(span * f + 0.5);

  // Under pressure the queue itself is the second signal: even before the
  // wait window reflects it, a deep queue justifies batching up to the
  // backlog (never beyond the cap).
  target = std::max(target, std::min(queue_depth, hi));
  return std::clamp(target, lo, hi);
}

}  // namespace fsda::serve
