#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace fsda::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro256** misbehaves on the all-zero state; splitmix64 cannot produce
  // four zero words from any seed, but keep the guard explicit.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng Rng::split(std::uint64_t tag) {
  const std::uint64_t a = (*this)();
  return Rng(a ^ (tag * 0xD1342543DE82EF95ULL) ^ 0xA0761D6478BD642FULL);
}

double Rng::uniform(double lo, double hi) {
  FSDA_CHECK_MSG(lo <= hi, "uniform bounds inverted: " << lo << " > " << hi);
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniforms; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  FSDA_CHECK_MSG(stddev >= 0.0, "negative stddev " << stddev);
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  FSDA_CHECK_MSG(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x = (*this)();
  while (x >= limit) x = (*this)();
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FSDA_CHECK_MSG(lo <= hi, "uniform_int bounds inverted");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  FSDA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FSDA_CHECK_MSG(w >= 0.0, "negative categorical weight " << w);
    total += w;
  }
  FSDA_CHECK_MSG(total > 0.0, "categorical weights sum to zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: land on the last bucket
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FSDA_CHECK_MSG(k <= n, "cannot sample " << k << " of " << n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal();
  return v;
}

}  // namespace fsda::common
