// fsda::common -- error types and invariant-checking macros.
//
// The library reports programmer errors and violated invariants through
// exceptions derived from fsda::common::Error.  The FSDA_CHECK* macros are
// always active (they are not compiled out in release builds): every module
// in this repository treats a violated precondition as a bug that must
// surface immediately, never as undefined behaviour.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fsda::common {

/// Base class for all fsda exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A violated precondition or invariant (programmer error).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Invalid user-supplied argument (caller error).
class ArgumentError : public Error {
 public:
  explicit ArgumentError(const std::string& what) : Error(what) {}
};

/// Shape mismatch between matrices / datasets.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Numerical failure (singular matrix, non-convergence, ...).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// I/O failure (file missing, malformed CSV, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FSDA_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace fsda::common

/// Always-on invariant check; throws InvariantError on failure.
#define FSDA_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::fsda::common::detail::throw_check_failure(#cond, __FILE__,         \
                                                  __LINE__, std::string{}); \
    }                                                                      \
  } while (0)

/// Invariant check with a streamed message, e.g.
/// FSDA_CHECK_MSG(i < n, "index " << i << " out of range " << n).
#define FSDA_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream fsda_check_os_;                                     \
      fsda_check_os_ << msg; /* NOLINT */                                    \
      ::fsda::common::detail::throw_check_failure(#cond, __FILE__, __LINE__, \
                                                  fsda_check_os_.str());     \
    }                                                                        \
  } while (0)
