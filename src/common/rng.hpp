// fsda::common -- deterministic random number generation.
//
// Every stochastic component in fsda takes an explicit 64-bit seed and builds
// an Rng from it, so that all experiments are reproducible bit-for-bit.  Rng
// wraps a splitmix64-seeded xoshiro256** core and provides the distributions
// the library needs (uniform, normal, Bernoulli, integer ranges, shuffling,
// sampling without replacement).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace fsda::common {

/// Deterministic, explicitly seeded PRNG (xoshiro256** core).
///
/// Satisfies UniformRandomBitGenerator so it can also be fed to <random>
/// distributions, although the built-in members are preferred because their
/// output is stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Builds a generator from a 64-bit seed via splitmix64 state expansion.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64 random bits.  Inline: this is the per-element draw under
  /// dropout masks and noise sampling, where a call per element dominates
  /// the loop body.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child generator; deriving with distinct tags
  /// yields decorrelated streams (used to hand sub-seeds to components).
  [[nodiscard]] Rng split(std::uint64_t tag);

  /// Uniform double in [0, 1): 53 random bits scaled by 2^-53.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, stdlib-independent).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p in [0, 1].  Consumes one
  /// uniform regardless of p, so streams stay aligned across call sites.
  bool bernoulli(double p) { return uniform() < p; }

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (order randomized).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Vector of n iid standard normal draws.
  std::vector<double> normal_vector(std::size_t n);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fsda::common
