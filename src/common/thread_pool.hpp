// fsda::common -- fixed-size thread pool and parallel_for.
//
// Used for trial-level parallelism in the experiment runner and tree-level
// parallelism in the random forest.  Tasks must not throw across the pool
// boundary unobserved: parallel_for captures the first exception raised by
// any chunk and rethrows it on the calling thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace fsda::common {

/// A fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future observes its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // The enqueue timestamp feeds the pool.queue_wait_ms histogram; it
      // is only taken (and later consumed) while telemetry is enabled.
      queue_.push_back(
          {[task] { (*task)(); },
           obs::telemetry_enabled() ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{}});
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is one of this process's pool workers.
  /// parallel_for uses it to run nested invocations inline instead of
  /// re-submitting to the pool, which would deadlock a saturated pool (a
  /// worker blocking on futures only other workers can drain) and
  /// oversubscribe otherwise.
  static bool in_worker();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
    /// Enqueue time for queue-wait telemetry; default-constructed (and
    /// ignored at dequeue) when telemetry was disabled at enqueue.
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the global pool, blocking until all
/// iterations finish.  Rethrows the first exception observed.  When n is
/// small or the pool has one thread, runs inline.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Like parallel_for but hands each worker a contiguous [begin, end) chunk.
void parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t begin, std::size_t end)>& body);

}  // namespace fsda::common
