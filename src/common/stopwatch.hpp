// fsda::common -- wall-clock stopwatch for the running-time experiments
// (paper Section VI-D).
#pragma once

#include <chrono>

namespace fsda::common {

/// Monotonic wall-clock stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fsda::common
