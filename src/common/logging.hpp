// fsda::common -- minimal leveled logging to stderr.
//
// The library is quiet by default (level = Warn); benches and examples raise
// the level to Info.  Logging is line-buffered and thread-safe.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace fsda::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global log threshold.
LogLevel log_level();

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Builds a message with ostream syntax and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, os_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace fsda::common

#define FSDA_LOG_DEBUG ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Debug)
#define FSDA_LOG_INFO ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Info)
#define FSDA_LOG_WARN ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Warn)
#define FSDA_LOG_ERROR ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Error)
