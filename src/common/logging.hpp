// fsda::common -- minimal leveled logging.
//
// The library is quiet by default (level = Warn); benches and examples raise
// the level to Info.  Lines are formatted as
//
//   2026-08-06T12:34:56.789Z WARN [tid 140213] message
//
// (ISO-8601 UTC timestamp, level tag, OS-opaque thread id) and go to stderr
// unless a sink is installed with set_log_sink() -- tests use the sink to
// capture output without touching the process's stderr.  Logging is
// line-buffered and thread-safe.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace fsda::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global log threshold.
LogLevel log_level();

/// Receives each formatted line that passes the threshold.  The sink runs
/// under the logging mutex: keep it fast and never log from inside it.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Installs a sink replacing the stderr writer; an empty function restores
/// the default.  Returns nothing; callers that need to stack sinks should
/// capture-and-chain themselves (tests simply save/restore).
void set_log_sink(LogSink sink);

/// Formats one line (timestamp + level + thread id + message) and emits it
/// through the active sink if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Builds a message with ostream syntax and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, os_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace fsda::common

#define FSDA_LOG_DEBUG ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Debug)
#define FSDA_LOG_INFO ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Info)
#define FSDA_LOG_WARN ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Warn)
#define FSDA_LOG_ERROR ::fsda::common::detail::LogMessage(::fsda::common::LogLevel::Error)
