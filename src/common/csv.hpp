// fsda::common -- small CSV reader/writer used to export experiment tables
// and to persist generated datasets for inspection.
#pragma once

#include <string>
#include <vector>

namespace fsda::common {

/// A parsed CSV file: header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t num_rows() const { return rows.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header.size(); }

  /// Index of the named column; throws ArgumentError when missing.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;
};

/// Splits one CSV line honouring double-quoted fields with "" escapes.
std::vector<std::string> split_csv_line(const std::string& line);

/// Quotes a field if it contains separators, quotes, or newlines.
std::string escape_csv_field(const std::string& field);

/// Reads a CSV file with a header row; throws IoError on failure and
/// ShapeError when a row's width disagrees with the header.
CsvTable read_csv(const std::string& path);

/// Writes a CSV file; throws IoError on failure.
void write_csv(const std::string& path, const CsvTable& table);

}  // namespace fsda::common
