// fsda::common -- typed access to FSDA_* environment variables.
//
// Benches default to scaled-down repeat counts and epoch budgets so the whole
// suite runs in minutes; setting FSDA_FULL=1 (or individual knobs such as
// FSDA_REPEATS / FSDA_EPOCHS) restores paper-scale runs.
#pragma once

#include <cstdint>
#include <string>

namespace fsda::common {

/// Raw environment lookup; returns fallback when unset or empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Integer environment lookup; throws ArgumentError on a malformed value.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Boolean lookup: "1", "true", "yes", "on" (case-insensitive) are true.
bool env_bool(const std::string& name, bool fallback);

/// True when FSDA_FULL requests paper-scale benchmark runs.
bool full_scale_requested();

}  // namespace fsda::common
