#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace fsda::common {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const std::string raw = env_string(name, "");
  if (raw.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(raw, &pos);
    if (pos != raw.size()) {
      throw ArgumentError("trailing characters in " + name + "=" + raw);
    }
    return value;
  } catch (const std::exception&) {
    throw ArgumentError("malformed integer env var " + name + "=" + raw);
  }
}

bool env_bool(const std::string& name, bool fallback) {
  std::string raw = env_string(name, "");
  if (raw.empty()) return fallback;
  std::transform(raw.begin(), raw.end(), raw.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return raw == "1" || raw == "true" || raw == "yes" || raw == "on";
}

bool full_scale_requested() { return env_bool("FSDA_FULL", false); }

}  // namespace fsda::common
