#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.hpp"

namespace fsda::common {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  // Touch the telemetry singletons before any worker exists so they outlive
  // the workers (both are leaked, but this also orders their construction).
  obs::MetricsRegistry::global();
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& tasks_total =
      registry.counter("pool.tasks_total", "tasks executed by pool workers");
  obs::HdrHistogram& queue_wait = registry.hdr(
      "pool.queue_wait_ms", obs::HdrOptions{},
      "time tasks spent queued before a worker picked them up (ms), "
      "log-linear quantile histogram");
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::telemetry_enabled() &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      tasks_total.inc();
      queue_wait.record(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - task.enqueued)
                            .count());
    }
    task.fn();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

void parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (ThreadPool::in_worker()) {
    // Nested parallel region: the caller already occupies a pool worker, so
    // queueing sub-tasks could deadlock (every worker blocked on futures no
    // one is left to run).  Run the whole range inline instead.
    body(0, n);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  const std::size_t workers = std::min(pool.size(), n);
  if (workers <= 1 || n == 1) {
    body(0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fsda::common
