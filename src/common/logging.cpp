#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace fsda::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const auto now = std::chrono::system_clock::now();
  const auto secs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(secs / 1000),
               static_cast<long long>(secs % 1000), level_name(level),
               message.c_str());
}

}  // namespace fsda::common
