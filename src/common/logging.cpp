#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>

#include "obs/journal.hpp"

namespace fsda::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;
LogSink g_sink;  // empty = default stderr writer; guarded by g_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// `2026-08-06T12:34:56.789Z` for the current wall clock.
std::string utc_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count();
  const std::time_t secs = static_cast<std::time_t>(ms / 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms % 1000));
  return buf;
}

/// Short numeric thread tag (hashed std::thread::id, truncated for width).
unsigned long thread_tag() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<unsigned long>(h % 1000000UL);
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // Warnings and errors become journal marks, so a Perfetto timeline shows
  // WHERE in the serving/adaptation flow each one fired (the message text
  // stays in the log; the mark carries the timestamp).
  if (level == LogLevel::Warn) {
    FSDA_EVENT_INSTANT(fsda::obs::EventCategory::System, "log.warn", 0.0);
  } else if (level == LogLevel::Error) {
    FSDA_EVENT_INSTANT(fsda::obs::EventCategory::System, "log.error", 0.0);
  }
  std::string line = utc_timestamp();
  line += ' ';
  line += level_name(level);
  line += " [tid ";
  line += std::to_string(thread_tag());
  line += "] ";
  line += message;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace fsda::common
