#include "common/retry.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fsda::common {

RetryController::RetryController(RetryPolicy policy) : policy_(policy) {
  FSDA_CHECK_MSG(policy_.max_attempts >= 1, "retry needs at least one attempt");
  FSDA_CHECK_MSG(policy_.backoff_factor > 0.0, "backoff factor must be > 0");
  FSDA_CHECK_MSG(policy_.deadline_seconds >= 0.0, "negative retry deadline");
  FSDA_CHECK_MSG(policy_.max_backoff_scale >= 1.0,
                 "backoff-scale ceiling must be >= 1");
}

bool RetryController::allow_retry() {
  if (attempt_ + 1 >= policy_.max_attempts) return false;
  if (deadline_exhausted()) return false;
  ++attempt_;
  return true;
}

double RetryController::backoff_scale() const {
  const double cap = policy_.max_backoff_scale;
  const double s =
      std::pow(policy_.backoff_factor, static_cast<double>(attempt_));
  // pow overflows to +inf (factor > 1) long before attempt_ wraps; a
  // long-lived controller must hand the caller the finite ceiling instead.
  // The decay direction (factor < 1) needs no floor: it underflows
  // gracefully through subnormals to 0.0, and callers legitimately rely on
  // extreme decay factors (e.g. one-shot lr rescue from a hostile start).
  if (!std::isfinite(s) || s > cap) return cap;
  return s;
}

std::uint64_t RetryController::seed_salt() const {
  // Golden-ratio increment keeps per-attempt streams well separated even
  // when the caller mixes the salt into a seed with a plain xor.
  return 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(attempt_) + 1);
}

bool RetryController::deadline_exhausted() const {
  return policy_.deadline_seconds > 0.0 &&
         timer_.seconds() >= policy_.deadline_seconds;
}

}  // namespace fsda::common
