// fsda::common -- bounded retry policy for recoverable numeric failures.
//
// Trainers (and any other stage that can fail transiently) wrap their work
// in a RetryController: a fixed attempt budget, a deterministic per-attempt
// seed salt for reseeding, a geometric backoff scale for tunable knobs
// (typically the learning rate), and an optional wall-clock deadline that
// bounds the total time spent across all attempts.  The controller is
// policy-only -- it never sleeps and never runs the work itself -- so it
// stays reusable by any trainer regardless of what "one attempt" means.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/stopwatch.hpp"

namespace fsda::common {

/// Bounded-retry policy: how many attempts, how hard to back off, and how
/// long the whole retry loop may take.
struct RetryPolicy {
  /// Total attempts, including the first (1 = never retry).
  std::size_t max_attempts = 3;
  /// Geometric backoff applied to the caller's tunable knob per retry:
  /// attempt k runs at knob * backoff_factor^k (e.g. learning-rate decay).
  double backoff_factor = 0.5;
  /// Wall-clock budget in seconds across all attempts; 0 = unbounded.
  double deadline_seconds = 0.0;
  /// Ceiling on the geometric scale.  pow() with a factor > 1 overflows to
  /// +inf within a few hundred attempts; backoff_scale() clamps to this
  /// ceiling so long-lived controllers (e.g. a drift loop re-arming for
  /// days) stay on a finite schedule.  The decay direction (factor < 1) is
  /// deliberately unfloored -- it underflows gracefully toward 0, and
  /// trainers rely on extreme decay factors for one-shot lr rescues.
  double max_backoff_scale = 1e6;
};

/// Tracks attempts against a RetryPolicy.  Usage:
///
///   RetryController retry(policy);
///   do {
///     ok = attempt(retry.backoff_scale(), retry.seed_salt());
///   } while (!ok && retry.allow_retry());
class RetryController {
 public:
  explicit RetryController(RetryPolicy policy);

  /// Records a failed attempt; true when another attempt is permitted
  /// (budget and deadline both unexhausted).
  bool allow_retry();

  /// 0-based index of the current attempt.
  [[nodiscard]] std::size_t attempt() const { return attempt_; }
  /// Retries consumed so far (attempt(), by another name).
  [[nodiscard]] std::size_t retries_used() const { return attempt_; }
  /// backoff_factor^attempt, clamped to the policy's max_backoff_scale
  /// ceiling (never +inf) -- multiply the tunable knob by this.
  [[nodiscard]] double backoff_scale() const;
  /// Deterministic salt distinguishing this attempt's random streams.
  [[nodiscard]] std::uint64_t seed_salt() const;
  /// Seconds elapsed since the controller was constructed.
  [[nodiscard]] double elapsed_seconds() const { return timer_.seconds(); }
  /// True once the wall-clock budget is spent (always false when 0).
  [[nodiscard]] bool deadline_exhausted() const;

 private:
  RetryPolicy policy_;
  Stopwatch timer_;
  std::size_t attempt_ = 0;
};

}  // namespace fsda::common
