#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace fsda::common {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ArgumentError("CSV column not found: " + name);
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string escape_csv_field(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open CSV for reading: " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) {
    throw IoError("CSV file is empty: " + path);
  }
  table.header = split_csv_line(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto row = split_csv_line(line);
    if (row.size() != table.header.size()) {
      std::ostringstream os;
      os << "CSV row width " << row.size() << " != header width "
         << table.header.size() << " in " << path;
      throw ShapeError(os.str());
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

void write_csv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open CSV for writing: " + path);
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << escape_csv_field(row[i]);
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    FSDA_CHECK_MSG(row.size() == table.header.size(),
                   "CSV row width mismatch while writing " << path);
    write_row(row);
  }
  if (!out) throw IoError("failed writing CSV: " + path);
}

}  // namespace fsda::common
