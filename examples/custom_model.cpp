// Demonstrates the framework's model-agnosticism: plugging a user-defined
// network-management model into the FS+GAN pipeline.  Any type satisfying
// the Classifier interface works -- here, a deliberately simple
// nearest-class-centroid classifier written in ~40 lines.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "baselines/ours.hpp"
#include "data/gen5gc.hpp"
#include "eval/metrics.hpp"
#include "models/classifier.hpp"

using namespace fsda;

namespace {

/// Nearest-centroid classifier with softmax-over-negative-distance scores.
class CentroidClassifier : public models::Classifier {
 public:
  void fit(const la::Matrix& x, const std::vector<std::int64_t>& y,
           std::size_t num_classes,
           const std::vector<double>& /*weights*/) override {
    centroids_ = la::Matrix(num_classes, x.cols(), 0.0);
    std::vector<double> counts(num_classes, 0.0);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto c = static_cast<std::size_t>(y[r]);
      counts[c] += 1.0;
      for (std::size_t f = 0; f < x.cols(); ++f) {
        centroids_(c, f) += x(r, f);
      }
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (counts[c] == 0.0) continue;
      for (std::size_t f = 0; f < x.cols(); ++f) {
        centroids_(c, f) /= counts[c];
      }
    }
  }

  [[nodiscard]] la::Matrix predict_proba(const la::Matrix& x) const override {
    la::Matrix logits(x.rows(), centroids_.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < centroids_.rows(); ++c) {
        double dist = 0.0;
        for (std::size_t f = 0; f < x.cols(); ++f) {
          const double d = x(r, f) - centroids_(c, f);
          dist += d * d;
        }
        logits(r, c) = -dist;
      }
    }
    // Row-wise softmax.
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      auto row = logits.row(r);
      const double mx = *std::max_element(row.begin(), row.end());
      double total = 0.0;
      for (auto& v : row) {
        v = std::exp(v - mx);
        total += v;
      }
      for (auto& v : row) v /= total;
    }
    return logits;
  }

  [[nodiscard]] std::string name() const override { return "Centroid"; }

 private:
  la::Matrix centroids_;
};

}  // namespace

int main() {
  const data::DomainSplit split =
      data::generate_5gc(data::Gen5GCConfig::quick());
  const data::Dataset shots = data::sample_few_shot(split.target_pool, 5, 21);

  // The pipeline only sees the factory -- the custom model drops in exactly
  // like the built-in TNet/MLP/RF/XGB.
  const models::ClassifierFactory factory =
      [](std::uint64_t) -> std::unique_ptr<models::Classifier> {
    return std::make_unique<CentroidClassifier>();
  };

  auto evaluate = [&](bool use_gan) {
    baselines::DAContext context{split.source_train, shots, factory, 5};
    std::unique_ptr<baselines::DAMethod> method;
    if (use_gan) method = std::make_unique<baselines::FsReconMethod>();
    else method = std::make_unique<baselines::FsMethod>();
    method->fit(context);
    const auto predicted = method->predict(split.target_test.x);
    return 100.0 * eval::macro_f1(split.target_test.y, predicted,
                                  split.target_test.num_classes);
  };

  std::printf("custom centroid model inside the paper's framework:\n");
  std::printf("  FS      macro-F1 = %.1f\n", evaluate(false));
  std::printf("  FS+GAN  macro-F1 = %.1f\n", evaluate(true));
  return 0;
}
