// Quickstart: mitigate data drift on a 5GC-like failure-classification task.
//
// Generates the synthetic 5GC domain-adaptation instance (source = digital
// twin, target = drifted real network), shows the drift problem (SrcOnly
// collapse), and fixes it with the paper's FS and FS+GAN pipelines using
// 5 labeled target samples per failure class.
#include <cstdio>

#include "baselines/naive.hpp"
#include "baselines/ours.hpp"
#include "common/env.hpp"
#include "data/gen5gc.hpp"
#include "eval/metrics.hpp"
#include "models/factory.hpp"

using namespace fsda;

int main() {
  // 1. Data: a source domain plus a drifted target domain.  The generator
  //    mirrors the ITU 5GC dataset's structure (see DESIGN.md).
  //    FSDA_FULL=1 switches to the paper-scale 442-feature instance.
  const data::DomainSplit split =
      data::generate_5gc(common::full_scale_requested()
                             ? data::Gen5GCConfig::paper()
                             : data::Gen5GCConfig::quick());
  std::printf("5GC-like instance: %zu source samples, %zu features, "
              "%zu classes, %zu target test samples\n",
              split.source_train.size(), split.source_train.num_features(),
              split.source_train.num_classes, split.target_test.size());

  // 2. Few-shot target data: 5 labeled samples per failure class.
  const data::Dataset shots =
      data::sample_few_shot(split.target_pool, /*shots=*/5, /*seed=*/7);

  // 3. A downstream network-management model.  The framework is
  //    model-agnostic: any Classifier factory works ("tnet", "mlp", "rf",
  //    "xgb", or your own).
  const models::ClassifierFactory tnet =
      models::make_classifier_factory("tnet");

  auto evaluate = [&](baselines::DAMethod& method, const char* label) {
    baselines::DAContext context{split.source_train, shots, tnet,
                                 /*seed=*/42};
    method.fit(context);
    const auto predicted = method.predict(split.target_test.x);
    const double f1 =
        100.0 * eval::macro_f1(split.target_test.y, predicted,
                               split.target_test.num_classes);
    std::printf("%-14s macro-F1 on drifted target: %5.1f\n", label, f1);
    return f1;
  };

  // 4. The drift problem: a model trained on source only collapses.
  baselines::SrcOnly src_only;
  const double f1_src = evaluate(src_only, "SrcOnly");

  // 5. Step 1 of the fix -- causal feature separation (FS).
  baselines::FsMethod fs;
  const double f1_fs = evaluate(fs, "FS (ours)");
  std::printf("               FS flagged %zu of %zu features as "
              "domain-variant (ground truth: %zu)\n",
              fs.separation().variant.size(),
              split.source_train.num_features(), split.true_variant.size());

  // 6. Step 2 -- GAN reconstruction of the variant features (FS+GAN).
  baselines::FsReconMethod fs_gan(baselines::ReconKind::Gan);
  const double f1_gan = evaluate(fs_gan, "FS+GAN (ours)");

  std::printf("\nDrift mitigation: SrcOnly %.1f -> FS %.1f -> FS+GAN %.1f\n",
              f1_src, f1_fs, f1_gan);
  return (f1_gan > f1_src) ? 0 : 1;
}
