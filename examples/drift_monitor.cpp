// Operating under *evolving* drift without retraining the network-management
// model (the paper's Section VI-F / Table III property).
//
// A fault-detection TNet is trained once, inside the FS+GAN pipeline, on
// source data only.  When the network later drifts into a second, different
// target regime, only adapt_to_new_target() runs -- it re-runs feature
// separation and refits the (lightweight) GAN, leaving the classifier
// untouched -- and detection quality is retained.
#include <cstdio>

#include "baselines/ours.hpp"
#include "core/pipeline.hpp"
#include "data/gen5gipc.hpp"
#include "eval/metrics.hpp"
#include "models/factory.hpp"

using namespace fsda;

int main() {
  // Three latent regimes: the source plus two successive target regimes.
  data::Gen5GIPCConfig config = data::Gen5GIPCConfig::quick();
  config.regimes = 3;
  config.regime_weights = {0.6, 0.25, 0.15};
  const data::Gen5GIPCPooled pooled = data::generate_5gipc_pooled(config);
  const data::GmmDomainSplit clusters =
      data::gmm_domain_split(pooled, 3, /*seed=*/5);
  const data::Dataset& source = clusters.clusters[0];

  auto make_target = [&](std::size_t index) {
    return data::stratified_split(clusters.clusters[index], 0.7,
                                  1000 + index);
  };
  auto [test_1, pool_1] = make_target(1);
  auto [test_2, pool_2] = make_target(2);

  // Train the pipeline ONCE against target 1's few-shot data.
  core::PipelineOptions options;
  core::FsGanPipeline pipeline(
      models::make_classifier_factory("tnet"),
      baselines::make_reconstructor_factory(baselines::ReconKind::Gan),
      options, /*seed=*/77);
  pipeline.train(source, data::sample_few_shot(pool_1, 5, 1));

  auto f1_on = [&](const data::Dataset& test) {
    return 100.0 * eval::macro_f1(test.y, pipeline.predict(test.x),
                                  test.num_classes);
  };
  std::printf("after initial adaptation:  Target_1 F1 = %.1f, "
              "Target_2 F1 = %.1f\n",
              f1_on(test_1), f1_on(test_2));

  // The network drifts again.  Re-run FS + GAN only; the classifier stays.
  pipeline.adapt_to_new_target(data::sample_few_shot(pool_2, 5, 2));
  const double t1_after = f1_on(test_1);
  const double t2_after = f1_on(test_2);
  std::printf("after re-adaptation:       Target_1 F1 = %.1f, "
              "Target_2 F1 = %.1f\n", t1_after, t2_after);
  std::printf("reconstructor refit took %.1f s; the network-management "
              "model was never retrained\n",
              pipeline.reconstructor_train_seconds());
  return (t2_after > 50.0) ? 0 : 1;
}
