// Fault detection on the 5GIPC-like NFV testbed data: shows the full
// dataset workflow the paper uses -- generate pooled multi-regime data,
// recover source/target domains with GMM clustering, then run the FS+GAN
// pipeline against the recovered drift.
#include <cstdio>

#include "baselines/naive.hpp"
#include "baselines/ours.hpp"
#include "data/gen5gipc.hpp"
#include "eval/metrics.hpp"
#include "models/factory.hpp"

using namespace fsda;

int main() {
  // 1. Pooled telemetry from an NFV testbed whose traffic trend changed at
  //    some point (two latent regimes).
  const data::Gen5GIPCConfig config = data::Gen5GIPCConfig::quick();
  const data::Gen5GIPCPooled pooled = data::generate_5gipc_pooled(config);
  std::printf("pooled 5GIPC-like data: %zu samples, %zu features\n",
              pooled.data.size(), pooled.data.num_features());

  // 2. Recover the domains by clustering, exactly as the paper does.
  const data::GmmDomainSplit clusters =
      data::gmm_domain_split(pooled, /*k=*/2, /*seed=*/17);
  std::printf("GMM split: source cluster %zu samples, target cluster %zu "
              "(regime purity %.2f / %.2f)\n",
              clusters.clusters[0].size(), clusters.clusters[1].size(),
              clusters.purity[0], clusters.purity[1]);

  // 3. Package as a DA problem (the library's one-call shortcut does steps
  //    1-3 internally: data::generate_5gipc(config)).
  const data::DomainSplit split = data::generate_5gipc(config);
  const data::Dataset shots =
      data::sample_few_shot(split.target_pool, /*shots=*/5, /*seed=*/3);

  // 4. Compare the undefended detector against the paper's pipeline, with
  //    an XGBoost downstream model this time (the framework is
  //    model-agnostic).
  const models::ClassifierFactory xgb = models::make_classifier_factory("xgb");
  auto evaluate = [&](baselines::DAMethod& method) {
    baselines::DAContext context{split.source_train, shots, xgb, 99};
    method.fit(context);
    const auto predicted = method.predict(split.target_test.x);
    return 100.0 * eval::macro_f1(split.target_test.y, predicted,
                                  split.target_test.num_classes);
  };
  baselines::SrcOnly src_only;
  baselines::FsReconMethod fs_gan;
  const double f1_src = evaluate(src_only);
  const double f1_gan = evaluate(fs_gan);
  std::printf("fault detection macro-F1: SrcOnly %.1f -> FS+GAN %.1f\n",
              f1_src, f1_gan);
  std::printf("FS identified %zu variant features (ground truth %zu)\n",
              fs_gan.separation().variant.size(), split.true_variant.size());
  return f1_gan > f1_src ? 0 : 1;
}
