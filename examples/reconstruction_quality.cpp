// Diagnoses step 2 of the framework in isolation: how well do the GAN / VAE
// / vanilla-AE reconstructors model P(X_var | X_inv) on held-out SOURCE
// data, and how much downstream accuracy survives when a source-trained
// classifier consumes reconstructed instead of real variant features?
//
// This is the experiment behind Table II's ordering: a reconstructor can
// have excellent RMSE (conditional mean) yet hurt the classifier by
// producing between-class artifacts on ambiguous samples.
#include <cmath>
#include <cstdio>

#include "baselines/ours.hpp"
#include "core/feature_separation.hpp"
#include "data/gen5gc.hpp"
#include "data/scaler.hpp"
#include "eval/metrics.hpp"
#include "la/stats.hpp"
#include "models/factory.hpp"

using namespace fsda;

int main() {
  const data::DomainSplit split =
      data::generate_5gc(data::Gen5GCConfig::quick());
  // Hold out part of the source for honest reconstruction scoring.
  auto [held_out, train] =
      data::stratified_split(split.source_train, 0.25, /*seed=*/3);

  data::MinMaxScaler scaler;
  scaler.fit(train.x);
  const la::Matrix xs = scaler.transform(train.x);
  const la::Matrix xh = scaler.transform(held_out.x);

  // Use the generator's ground-truth variant set so reconstruction quality
  // is measured independently of FS detection quality.
  std::vector<std::size_t> variant = split.true_variant;
  std::vector<std::size_t> invariant;
  for (std::size_t f = 0; f < xs.cols(); ++f) {
    bool is_var = false;
    for (std::size_t v : variant) is_var |= (v == f);
    if (!is_var) invariant.push_back(f);
  }
  const la::Matrix xs_inv = xs.select_cols(invariant);
  const la::Matrix xs_var = xs.select_cols(variant);
  const la::Matrix xh_inv = xh.select_cols(invariant);
  const la::Matrix xh_var = xh.select_cols(variant);

  // Classifier trained on [inv | var] of the source, as the pipeline does.
  auto classifier = models::make_classifier_factory("tnet")(11);
  classifier->fit(xs_inv.hcat(xs_var), train.y, train.num_classes, {});
  const auto real_pred =
      models::argmax_rows(classifier->predict_proba(xh_inv.hcat(xh_var)));
  const double f1_real = 100.0 * eval::macro_f1(held_out.y, real_pred,
                                                held_out.num_classes);
  std::printf("classifier on held-out source, REAL variant feats : %5.1f\n",
              f1_real);

  // Reference: how much of the class signal the invariant block alone
  // carries (this is the ceiling any inv-conditioned reconstructor can
  // reach, and the quantity the FS baseline estimates directly).
  {
    auto inv_classifier = models::make_classifier_factory("tnet")(12);
    inv_classifier->fit(xs_inv, train.y, train.num_classes, {});
    const auto pred =
        models::argmax_rows(inv_classifier->predict_proba(xh_inv));
    std::printf("classifier on held-out source, INV features only  : %5.1f\n",
                100.0 * eval::macro_f1(held_out.y, pred,
                                       held_out.num_classes));
  }

  const double var_std = [&] {
    double acc = 0.0;
    for (std::size_t c = 0; c < xh_var.cols(); ++c) {
      acc += la::stddev(xh_var.col_vector(c));
    }
    return acc / static_cast<double>(xh_var.cols());
  }();

  for (auto kind :
       {baselines::ReconKind::Gan, baselines::ReconKind::NoCondGan,
        baselines::ReconKind::Vae, baselines::ReconKind::VanillaAe}) {
    auto recon = baselines::make_reconstructor_factory(kind)(
        invariant.size(), variant.size(), /*seed=*/99);
    recon->fit(xs_inv, xs_var, train.y, train.num_classes);
    const la::Matrix xh_hat = recon->reconstruct(xh_inv);
    // RMSE across all held-out cells.
    double mse = 0.0;
    for (std::size_t r = 0; r < xh_hat.rows(); ++r) {
      for (std::size_t c = 0; c < xh_hat.cols(); ++c) {
        const double d = xh_hat(r, c) - xh_var(r, c);
        mse += d * d;
      }
    }
    mse /= static_cast<double>(xh_hat.rows() * xh_hat.cols());
    const auto pred =
        models::argmax_rows(classifier->predict_proba(xh_inv.hcat(xh_hat)));
    const double f1 = 100.0 * eval::macro_f1(held_out.y, pred,
                                             held_out.num_classes);
    const double agree = 100.0 * eval::accuracy(real_pred, pred);
    std::printf(
        "%-10s held-out source: RMSE=%.3f (var std %.3f)  F1=%5.1f  "
        "agreement-with-real=%5.1f%%\n",
        recon->name().c_str(), std::sqrt(mse), var_std, f1, agree);
  }
  return 0;
}
